// hls_verify — CLI front end for the model-checking harness.
//
//   hls_verify --list
//   hls_verify --model=deque                      # bounded exhaustive
//   hls_verify --model=claim --workers=3 --partitions=4 --bound=-1
//   hls_verify --model=parking-broken-norecheck --expect-failure
//   hls_verify --model=deque --mode=random --iters=50000 --seed=7
//   hls_verify --model=deque-broken-nogenbump --schedule=0,0,1,...  # replay
//
// A failing exploration prints the failure, the schedule (replayable via
// --schedule=), and the full interleaving trace. The summary line carries
// the counters the CI summary scrapes (verify_states_explored,
// verify_preemptions).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/cli.h"
#include "verify/models/models.h"
#include "verify/sched.h"

namespace {

using hls::verify::model;
using hls::verify::options;

struct model_spec {
  const char* name;
  const char* what;
  bool expect_failure;  // a broken variant: detection is the pass
  int default_bound;
};

// --workers/--partitions only affect the claim model; the rest are fixed
// scenarios (see src/verify/models/).
const model_spec kSpecs[] = {
    {"claim", "run_claim_loop: Theorem 3 exactly-once + Lemma 4 bound",
     false, -1},
    {"deque", "ws_deque_core: owner vs batch thief, exactly-once", false, 3},
    {"deque-broken-nogenbump",
     "deque with the locked-pop generation bump removed (ABA)", true, 3},
    {"range_slot", "range_slot_core: reserve/steal/close + reopen", false, 3},
    {"range_slot-broken-nodrain",
     "range_slot with close() not draining readers (use-after-reopen race)",
     true, 3},
    {"range_word",
     "64-bit two-word range layout: announce/re-read vs BUSY CAS/re-read",
     false, 3},
    {"range_word-broken-norecheck",
     "range_word with the thief's post-CAS split re-read skipped (overlap)",
     true, 3},
    {"claim-bitmap",
     "bitmap claim flags + word-at-a-time leftover sweep, exactly-once",
     false, 3},
    {"claim-bitmap-broken-nonatomic",
     "bitmap sweep with a non-atomic load/store RMW (double claim)", true,
     3},
    {"parking", "parking_lot_core: prepare/re-check/park, no lost wakeup",
     false, 3},
    {"parking-broken-norecheck",
     "parking with the post-announce re-check skipped (lost wakeup)", true,
     3},
    {"parking-backoff",
     "backoff_park nap: done-only re-check + retire broadcast, no lost "
     "completion edge",
     false, 3},
    {"parking-backoff-broken-nobroadcast",
     "backoff nap with the retire unpark_all omitted (sleeps past "
     "completion)",
     true, 3},
    {"handoff",
     "push-based handoff: deposit/unpark_at vs consume/poach/reclaim, "
     "exactly-once + no lost work",
     false, 3},
    {"handoff-broken-dropped",
     "handoff dropped on a failed wake with every rescue removed (lost "
     "work)",
     true, 3},
};

std::unique_ptr<model> make(const std::string& name, const hls::cli& args) {
  const auto workers =
      static_cast<std::uint32_t>(args.get_int_in("workers", 2, 1, 8));
  const auto partitions =
      static_cast<std::uint64_t>(args.get_int_in("partitions", 2, 1, 63));
  if (name == "claim") return hls::verify::make_claim_model(workers, partitions);
  if (name == "deque") return hls::verify::make_deque_model(false);
  if (name == "deque-broken-nogenbump")
    return hls::verify::make_deque_model(true);
  if (name == "range_slot") return hls::verify::make_range_slot_model(false);
  if (name == "range_slot-broken-nodrain")
    return hls::verify::make_range_slot_model(true);
  if (name == "range_word") return hls::verify::make_range_word_model(false);
  if (name == "range_word-broken-norecheck")
    return hls::verify::make_range_word_model(true);
  if (name == "claim-bitmap")
    return hls::verify::make_claim_bitmap_model(false);
  if (name == "claim-bitmap-broken-nonatomic")
    return hls::verify::make_claim_bitmap_model(true);
  if (name == "parking") return hls::verify::make_parking_model(false);
  if (name == "parking-broken-norecheck")
    return hls::verify::make_parking_model(true);
  if (name == "parking-backoff") return hls::verify::make_backoff_model(false);
  if (name == "parking-backoff-broken-nobroadcast")
    return hls::verify::make_backoff_model(true);
  if (name == "handoff") return hls::verify::make_handoff_model(false);
  if (name == "handoff-broken-dropped")
    return hls::verify::make_handoff_model(true);
  return nullptr;
}

void list_models() {
  std::printf("models (--model=NAME):\n");
  for (const auto& s : kSpecs) {
    std::printf("  %-28s %s%s\n", s.name, s.what,
                s.expect_failure ? "  [expected to FAIL]" : "");
  }
}

std::vector<std::int8_t> parse_schedule(const std::string& csv) {
  std::vector<std::int8_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t next = csv.find(',', pos);
    if (next == std::string::npos) next = csv.size();
    out.push_back(static_cast<std::int8_t>(
        std::stoi(csv.substr(pos, next - pos))));
    pos = next + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const hls::cli args(argc, argv);
  if (args.get_bool("list", false) || args.has("help")) {
    list_models();
    std::printf(
        "\nflags: --mode=exhaustive|random|replay --bound=N (preemptions; -1 "
        "unbounded)\n"
        "       --iters=N --seed=N --max-execs=N --max-steps=N\n"
        "       --no-hash (disable visited-state pruning)\n"
        "       --schedule=t0,t1,... (replay) --trace (trace successful "
        "replay)\n"
        "       --workers=N --partitions=N (claim model)\n"
        "       --expect-failure (exit 0 iff a failure IS detected)\n");
    return 0;
  }

  std::string mode_name = args.get("mode", "exhaustive");
  const std::string name = args.get(
      "model", args.positional().empty() ? "" : args.positional().front());
  const model_spec* spec = nullptr;
  for (const auto& s : kSpecs) {
    if (name == s.name) spec = &s;
  }
  if (spec == nullptr) {
    std::fprintf(stderr, "hls_verify: unknown model '%s' (try --list)\n",
                 name.c_str());
    return 2;
  }

  options opt;
  if (mode_name == "exhaustive") {
    opt.mode = options::run_mode::exhaustive;
  } else if (mode_name == "random") {
    opt.mode = options::run_mode::random;
  } else if (mode_name == "replay") {
    opt.mode = options::run_mode::replay;
  } else {
    std::fprintf(stderr, "hls_verify: unknown --mode=%s\n",
                 mode_name.c_str());
    return 2;
  }
  opt.preemption_bound = static_cast<int>(
      args.get_int("bound", spec->default_bound));
  opt.iterations = static_cast<std::uint64_t>(args.get_int("iters", 10000));
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  opt.max_executions =
      static_cast<std::uint64_t>(args.get_int("max-execs", 0));
  opt.max_steps =
      static_cast<std::uint64_t>(args.get_int("max-steps", 1 << 20));
  opt.hash_states = !args.get_bool("no-hash", false);
  opt.trace_on_success = args.get_bool("trace", false);
  if (args.has("schedule")) {
    opt.mode = options::run_mode::replay;
    mode_name = "replay";
    opt.schedule = parse_schedule(args.get("schedule", ""));
  }

  auto m = make(name, args);
  const auto res = hls::verify::explore(*m, opt);

  std::printf(
      "model=%s mode=%s bound=%d executions=%llu "
      "verify_states_explored=%llu verify_preemptions=%llu steps=%llu "
      "max_depth=%llu weak_acquire_warnings=%llu exhausted=%d\n",
      m->name(), mode_name.c_str(), opt.preemption_bound,
      static_cast<unsigned long long>(res.executions),
      static_cast<unsigned long long>(res.states_explored),
      static_cast<unsigned long long>(res.preemptions),
      static_cast<unsigned long long>(res.steps),
      static_cast<unsigned long long>(res.max_depth),
      static_cast<unsigned long long>(res.weak_acquire_warnings),
      res.exhausted ? 1 : 0);

  if (!res.ok) {
    std::printf("FAILURE: %s\n", res.failure.c_str());
    std::printf("schedule (replay with --model=%s --schedule=", m->name());
    for (std::size_t i = 0; i < res.schedule.size(); ++i) {
      std::printf("%s%d", i == 0 ? "" : ",", res.schedule[i]);
    }
    std::printf("):\ninterleaving trace:\n");
    for (const auto& line : res.trace) std::printf("  %s\n", line.c_str());
  } else if (opt.trace_on_success && !res.trace.empty()) {
    std::printf("trace:\n");
    for (const auto& line : res.trace) std::printf("  %s\n", line.c_str());
  }

  const bool expect_failure =
      args.get_bool("expect-failure", spec->expect_failure);
  if (expect_failure) {
    if (res.ok) {
      std::printf("VERDICT: broken variant NOT detected (bad)\n");
      return 1;
    }
    std::printf("VERDICT: broken variant detected as expected\n");
    return 0;
  }
  std::printf("VERDICT: %s\n", res.ok ? "ok" : "FAILED");
  return res.ok ? 0 : 1;
}

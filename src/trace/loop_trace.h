// Loop execution tracing: which worker executed which chunk, in what order.
//
// The affinity experiment (paper Fig. 2) needs the iteration -> worker map
// of consecutive parallel loops; the memory-hierarchy simulator (Fig. 4)
// replays chunks in global execution order. Recording uses per-worker
// buffers (no locks) plus one global sequence counter.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace hls::trace {

struct chunk_rec {
  std::int64_t begin = 0;
  std::int64_t end = 0;       // exclusive
  std::uint32_t worker = 0;
  std::uint64_t seq = 0;      // global execution order
};

class loop_trace {
 public:
  explicit loop_trace(std::uint32_t num_workers);

  // Sentinel lane id for chunks executed by a thread not bound to the
  // runtime (parallel_for's serial foreign-thread degrade). Distinct from
  // kNoOwner, and never a valid worker id: recording foreign chunks as
  // worker 0 would collide with the real worker 0 in merged traces.
  static constexpr std::uint32_t kForeignLane = 0xfffffffeu;

  // Thread-safe for concurrent calls from distinct workers. kForeignLane
  // records go to a dedicated mutex-guarded lane, so any number of
  // concurrent foreign threads may record too.
  void record(std::uint32_t worker, std::int64_t begin, std::int64_t end);

  std::uint32_t num_workers() const noexcept {
    return static_cast<std::uint32_t>(per_worker_.size());
  }

  const std::vector<chunk_rec>& of_worker(std::uint32_t w) const {
    return per_worker_[w];
  }

  // Chunks recorded under kForeignLane (worker field == kForeignLane).
  // Like of_worker, only safe to read once recording threads are done.
  const std::vector<chunk_rec>& foreign_chunks() const { return foreign_; }

  // All chunks, ordered by global execution sequence.
  std::vector<chunk_rec> sorted_by_seq() const;

  // Expands chunks into a per-iteration owner map over [begin, end).
  // Iterations never executed (a bug) are left as kNoOwner.
  //
  // Entry k is the owner of iteration begin + k*stride (stride < 1 reads
  // as 1), so wide loops can be sampled instead of materialized: the
  // result has ceil((end-begin)/stride) entries. This is a diagnostics
  // helper, and a billion-iteration span would be a multi-GB allocation —
  // when the entry count exceeds kMaxOwnerEntries the call allocates
  // nothing and returns an explicit EMPTY vector (distinguishable from
  // any in-range request, which always has >= 1 entry); callers on huge
  // loops pass a stride to sample under the cap.
  static constexpr std::uint32_t kNoOwner = ~0u;
  static constexpr std::int64_t kMaxOwnerEntries = std::int64_t{1} << 24;
  std::vector<std::uint32_t> iteration_owners(std::int64_t begin,
                                              std::int64_t end,
                                              std::int64_t stride = 1) const;

  // Total iterations recorded (sum of chunk sizes).
  std::int64_t total_iterations() const;

  std::size_t chunk_count() const;

  // Resets for the next loop instance, keeping buffers allocated.
  void clear();

 private:
  std::vector<std::vector<chunk_rec>> per_worker_;
  std::vector<chunk_rec> foreign_;  // guarded by foreign_mu_
  std::mutex foreign_mu_;
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace hls::trace

// Minimal --key=value flag parsing shared by benches and examples.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hls {

class cli {
 public:
  cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;

  // Integer flags are parsed strictly: a value that is not a (possibly
  // signed) decimal integer throws std::invalid_argument naming the flag,
  // instead of silently reading as 0.
  std::int64_t get_int(const std::string& key, std::int64_t def) const;

  // get_int plus a range check [lo, hi]; out-of-range values throw
  // std::invalid_argument with the accepted range.
  std::int64_t get_int_in(const std::string& key, std::int64_t def,
                          std::int64_t lo, std::int64_t hi) const;

  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  // Comma-separated integer list, e.g. --workers=1,2,4,8.
  std::vector<std::int64_t> get_int_list(
      const std::string& key, std::vector<std::int64_t> def) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace hls

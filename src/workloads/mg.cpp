#include "workloads/mg.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "sched/reduce.h"
#include "util/nas_rng.h"

namespace hls::workloads::nas {

namespace {

// NPB MG operator coefficients by neighbor class (center, face, edge,
// corner). `a` is the A operator for class-S/A problems; `c` is the
// smoother S.
constexpr double kA[4] = {-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0};
constexpr double kC[4] = {-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0};

// Applies the 27-point operator with class coefficients w[0..3] at (i,j,k).
double stencil27(const mg_grid& g, const double w[4], int i, int j, int k) {
  double by_class[4] = {0.0, 0.0, 0.0, 0.0};
  for (int di = -1; di <= 1; ++di) {
    const int ii = g.wrap(i + di);
    for (int dj = -1; dj <= 1; ++dj) {
      const int jj = g.wrap(j + dj);
      for (int dk = -1; dk <= 1; ++dk) {
        const int kk = g.wrap(k + dk);
        const int cls = (di != 0) + (dj != 0) + (dk != 0);
        by_class[cls] += g.at(ii, jj, kk);
      }
    }
  }
  return w[0] * by_class[0] + w[1] * by_class[1] + w[2] * by_class[2] +
         w[3] * by_class[3];
}

}  // namespace

mg_bench::mg_bench(const mg_params& p)
    : p_(p),
      levels_(p.log2_size - 1),  // coarsest grid is 4^3
      u_(1 << p.log2_size),
      v_(1 << p.log2_size),
      r_(1 << p.log2_size) {
  if (levels_ < 1) levels_ = 1;
  for (int l = 0; l < levels_; ++l) {
    const int n = 1 << (p.log2_size - l);
    ru_.emplace_back(n);
    rr_.emplace_back(n);
  }
  // Right-hand side: +1 at `charge_points` LCG points, -1 at another set,
  // as NPB's zran3 does (it picks the extreme values of a random field).
  const int n = v_.n();
  double x = static_cast<double>(p.seed);
  auto next_index = [&]() {
    return static_cast<int>(hls::nas::randlc(&x, hls::nas::kDefaultMult) * n);
  };
  for (int c = 0; c < p.charge_points; ++c) {
    v_.at(next_index(), next_index(), next_index()) = -1.0;
  }
  for (int c = 0; c < p.charge_points; ++c) {
    v_.at(next_index(), next_index(), next_index()) = +1.0;
  }
}

void mg_bench::resid(rt::runtime& rt, const mg_grid& u, const mg_grid& v,
                     mg_grid& r, policy pol, const loop_options& opt) {
  const int n = u.n();
  parallel_for(
      rt, 0, n, pol,
      [&](std::int64_t lo, std::int64_t hi) {
        for (int i = static_cast<int>(lo); i < static_cast<int>(hi); ++i) {
          for (int j = 0; j < n; ++j) {
            for (int k = 0; k < n; ++k) {
              r.at(i, j, k) = v.at(i, j, k) - stencil27(u, kA, i, j, k);
            }
          }
        }
      },
      opt);
}

void mg_bench::psinv(rt::runtime& rt, const mg_grid& r, mg_grid& u,
                     policy pol, const loop_options& opt) {
  const int n = r.n();
  parallel_for(
      rt, 0, n, pol,
      [&](std::int64_t lo, std::int64_t hi) {
        for (int i = static_cast<int>(lo); i < static_cast<int>(hi); ++i) {
          for (int j = 0; j < n; ++j) {
            for (int k = 0; k < n; ++k) {
              u.at(i, j, k) += stencil27(r, kC, i, j, k);
            }
          }
        }
      },
      opt);
}

void mg_bench::rprj3(rt::runtime& rt, const mg_grid& fine, mg_grid& coarse,
                     policy pol, const loop_options& opt) {
  const int nc = coarse.n();
  parallel_for(
      rt, 0, nc, pol,
      [&](std::int64_t lo, std::int64_t hi) {
        for (int i = static_cast<int>(lo); i < static_cast<int>(hi); ++i) {
          for (int j = 0; j < nc; ++j) {
            for (int k = 0; k < nc; ++k) {
              // Full weighting: 27-point average around the matching fine
              // point, weights 1/(2^class) normalized by 1/8.
              double sum = 0.0;
              for (int di = -1; di <= 1; ++di) {
                for (int dj = -1; dj <= 1; ++dj) {
                  for (int dk = -1; dk <= 1; ++dk) {
                    const int cls = (di != 0) + (dj != 0) + (dk != 0);
                    const double wgt = 1.0 / static_cast<double>(1 << cls);
                    sum += wgt * fine.at(fine.wrap(2 * i + di),
                                         fine.wrap(2 * j + dj),
                                         fine.wrap(2 * k + dk));
                  }
                }
              }
              coarse.at(i, j, k) = sum / 8.0;
            }
          }
        }
      },
      opt);
}

void mg_bench::interp(rt::runtime& rt, const mg_grid& coarse, mg_grid& fine,
                      policy pol, const loop_options& opt) {
  const int nc = coarse.n();
  parallel_for(
      rt, 0, nc, pol,
      [&](std::int64_t lo, std::int64_t hi) {
        for (int i = static_cast<int>(lo); i < static_cast<int>(hi); ++i) {
          for (int j = 0; j < nc; ++j) {
            for (int k = 0; k < nc; ++k) {
              // Trilinear prolongation: distribute coarse value to the 8
              // fine cells of its octant with weights by distance.
              for (int di = 0; di <= 1; ++di) {
                for (int dj = 0; dj <= 1; ++dj) {
                  for (int dk = 0; dk <= 1; ++dk) {
                    // Average of the 2^cls coarse neighbors.
                    double val = 0.0;
                    for (int si = 0; si <= di; ++si) {
                      for (int sj = 0; sj <= dj; ++sj) {
                        for (int sk = 0; sk <= dk; ++sk) {
                          val += coarse.at(coarse.wrap(i + si),
                                           coarse.wrap(j + sj),
                                           coarse.wrap(k + sk));
                        }
                      }
                    }
                    val /= static_cast<double>((1 + di) * (1 + dj) * (1 + dk));
                    fine.at(2 * i + di, 2 * j + dj, 2 * k + dk) += val;
                  }
                }
              }
            }
          }
        }
      },
      opt);
}

void mg_bench::vcycle(rt::runtime& rt, policy pol, const loop_options& opt) {
  // Finest residual into rr_[0].
  resid(rt, u_, v_, rr_[0], pol, opt);

  // Downstroke: restrict residuals to the coarsest level.
  for (int l = 1; l < levels_; ++l) {
    rprj3(rt, rr_[l - 1], rr_[l], pol, opt);
  }

  // Coarsest solve: a smoother application on a zeroed correction.
  {
    mg_grid& uc = ru_[levels_ - 1];
    std::fill(uc.raw().begin(), uc.raw().end(), 0.0);
    psinv(rt, rr_[levels_ - 1], uc, pol, opt);
  }

  // Upstroke: prolongate, re-smooth.
  for (int l = levels_ - 2; l >= 0; --l) {
    mg_grid& uf = ru_[l];
    std::fill(uf.raw().begin(), uf.raw().end(), 0.0);
    interp(rt, ru_[l + 1], uf, pol, opt);
    // Correct the level residual and smooth: uf += S (rr - A uf).
    mg_grid tmp(uf.n());
    resid(rt, uf, rr_[l], tmp, pol, opt);
    psinv(rt, tmp, uf, pol, opt);
  }

  // Apply the correction on the finest grid.
  const int n = u_.n();
  parallel_for(
      rt, 0, n, pol,
      [&](std::int64_t lo, std::int64_t hi) {
        for (int i = static_cast<int>(lo); i < static_cast<int>(hi); ++i) {
          for (int j = 0; j < n; ++j) {
            for (int k = 0; k < n; ++k) {
              u_.at(i, j, k) += ru_[0].at(i, j, k);
            }
          }
        }
      },
      opt);
}

double mg_bench::residual_norm(rt::runtime& rt, policy pol,
                               const loop_options& opt) {
  resid(rt, u_, v_, r_, pol, opt);
  const int n = r_.n();
  const double sum = parallel_reduce(
      rt, 0, n, pol, 0.0,
      [&](std::int64_t lo, std::int64_t hi) {
        double local = 0.0;
        for (int i = static_cast<int>(lo); i < static_cast<int>(hi); ++i) {
          for (int j = 0; j < n; ++j) {
            for (int k = 0; k < n; ++k) {
              local += r_.at(i, j, k) * r_.at(i, j, k);
            }
          }
        }
        return local;
      },
      [](double a, double b) { return a + b; }, opt);
  const double cells = static_cast<double>(n) * n * n;
  return std::sqrt(sum / cells);
}

kernel_result mg_bench::run(rt::runtime& rt, policy pol,
                            const loop_options& opt) {
  const double r0 = residual_norm(rt, pol, opt);
  double prev = r0;
  double worst_rate = 0.0;
  for (int c = 0; c < p_.cycles; ++c) {
    vcycle(rt, pol, opt);
    const double rn = residual_norm(rt, pol, opt);
    worst_rate = std::max(worst_rate, prev > 0 ? rn / prev : 0.0);
    prev = rn;
  }

  kernel_result kr;
  std::ostringstream os;
  os << "r0=" << r0 << " rfinal=" << prev << " worst_rate=" << worst_rate;
  // Multigrid with this smoother contracts the residual every cycle: no
  // single cycle may stagnate, and the overall reduction must beat 0.7 per
  // cycle on average.
  kr.verified = std::isfinite(prev) && worst_rate < 0.85 &&
                prev < r0 * std::pow(0.7, p_.cycles);
  kr.checksum = prev;
  kr.detail = os.str();
  const double n3 = std::pow(2.0, 3.0 * p_.log2_size);
  kr.mflops_proxy = n3 * 60.0 * p_.cycles / 1e6;
  return kr;
}

sim::workload_spec mg_spec(const mg_params& p) {
  sim::workload_spec w;
  w.name = "nas_mg";
  w.outer_iterations = p.cycles;
  const int nf = 1 << p.log2_size;
  const int levels = std::max(1, p.log2_size - 1);
  w.total_bytes = 3ull * static_cast<std::uint64_t>(nf) * nf * nf * 8;

  // Region ids: plane index at the finest level; coarser planes map onto
  // the corresponding finest-region (locality follows the spatial domain).
  w.region_count = nf;

  auto add_plane_loop = [&](int n, double work_per_cell, int region_stride) {
    sim::loop_spec ls;
    ls.n = n;
    const double cells = static_cast<double>(n) * n;
    ls.cpu_ns = [cells, work_per_cell](std::int64_t) {
      return cells * work_per_cell;
    };
    ls.bytes = [cells](std::int64_t) -> std::uint64_t {
      return static_cast<std::uint64_t>(cells * 8.0 * 2.0);
    };
    ls.region_of = [region_stride](std::int64_t i) {
      return i * region_stride;
    };
    w.loops.push_back(std::move(ls));
  };

  // One V-cycle: resid at finest, restrict down, smooth at coarsest,
  // interp+resid+smooth up, final correction add. Work per cell ~ stencil
  // cost (27-point ~ 8 ns).
  add_plane_loop(nf, 8.0, 1);  // finest resid
  for (int l = 1; l < levels; ++l) {
    add_plane_loop(nf >> l, 10.0, 1 << l);  // restriction at level l
  }
  add_plane_loop(nf >> (levels - 1), 8.0, 1 << (levels - 1));  // coarse smooth
  for (int l = levels - 2; l >= 0; --l) {
    add_plane_loop(nf >> l, 20.0, 1 << l);  // interp + resid + smooth
  }
  add_plane_loop(nf, 1.0, 1);  // correction add
  return w;
}

}  // namespace hls::workloads::nas

// Concurrent partition bookkeeping for a hybrid loop (the structure `A`
// initialized by Algorithm 1 line 1).
//
// Two storage modes behind one interface, selected by R:
//
//   R <  kBitmapThreshold  one claimed-flag per partition, padded to a
//                          cache line each so concurrent fetch_or
//                          operations from different workers never
//                          contend on a line.
//   R >= kBitmapThreshold  a packed bitmap of cacheline-padded 64-bit
//                          words, 64 partitions per word. A claim is
//                          still one fetch_or on the partition's bit —
//                          test_and_set semantics are bit-for-bit those
//                          of the per-partition flag, so Theorem 3
//                          (exactly-once) and Lemma 4 (lg R bound) carry
//                          over unchanged — while scans (is-anything-
//                          left, leftover sweeps) cover 64 partitions
//                          per load and the rescue sweep claims up to 64
//                          leftovers per RMW. At R = 2^20 this is 1 MB
//                          of flags instead of 64 MB.
//
// Plus the arithmetic that maps partitions to iteration sub-ranges.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/bits.h"
#include "util/cacheline.h"

namespace hls::core {

struct iter_range {
  std::int64_t begin = 0;
  std::int64_t end = 0;  // exclusive
  std::int64_t size() const noexcept { return end - begin; }
  bool empty() const noexcept { return begin >= end; }
};

class partition_set {
 public:
  // R at or above this uses the packed-bitmap storage. 64 keeps every
  // sub-threshold set on the zero-false-sharing per-partition flags
  // (claim-rate-bound workloads have small R) and every bitmap set an
  // exact multiple of one word (R is rounded to a power of two).
  static constexpr std::uint64_t kBitmapThreshold = 64;

  // Divides [begin, end) into next_pow2(max(num_partitions, 1)) equal-sized
  // partitions. `num_partitions` is normally the worker count P; when P is
  // not a power of two the set is rounded up and the extra partitions are
  // unassociated with any worker (paper Section III).
  partition_set(std::int64_t begin, std::int64_t end,
                std::uint32_t num_partitions);

  // Weighted variant (paper Section VI extension): partition boundaries
  // equalize the per-iteration weight sums instead of iteration counts, so
  // an annotated unbalanced loop starts from balanced earmarked partitions.
  // The claim heuristic is unchanged.
  partition_set(std::int64_t begin, std::int64_t end,
                std::uint32_t num_partitions,
                const std::function<double(std::int64_t)>& weight);

  std::uint64_t count() const noexcept { return r_; }            // R
  std::uint64_t log2_count() const noexcept { return lg_r_; }    // lg R
  std::int64_t begin() const noexcept { return begin_; }
  std::int64_t end() const noexcept { return end_; }

  // Iteration sub-range of partition r (balanced split: the first
  // (end-begin) mod R partitions get one extra iteration).
  iter_range range(std::uint64_t r) const noexcept;

  // Atomically claims partition r; returns true if this call won the claim
  // (the fetch_and_or of Algorithm 2 line 5 succeeded).
  bool try_claim(std::uint64_t r) noexcept;

  // Non-destructive peek used by the DoHybridLoop steal protocol: a thief
  // checks whether its designated partition is still available before
  // entering the loop.
  bool is_claimed(std::uint64_t r) const noexcept;

  // Number of partitions claimed so far / whether all are claimed.
  std::uint64_t claimed_count() const noexcept;
  bool all_claimed() const noexcept;

  // True when the packed-bitmap storage is in use (R >= kBitmapThreshold).
  bool bitmap() const noexcept { return words_ != nullptr; }

  // Number of 64-partition blocks (ceil(R / 64)); the block/claim_block
  // API below is defined for both storage modes.
  std::uint64_t block_count() const noexcept { return (r_ + 63) >> 6; }

  // Atomically claims every still-unclaimed partition in 64-partition
  // block `b` (partitions [64b, min(64b+64, R))). Returns the mask of
  // partitions won by THIS call, bit i = partition 64b + i. In bitmap
  // mode this is one fetch_or for the whole block (preceded by a load
  // that skips fully-claimed blocks without an RMW); each won bit is an
  // individual test_and_set win, so exactly-once is untouched.
  std::uint64_t claim_block(std::uint64_t b) noexcept;

  // First unclaimed partition index >= from, or count() when none; skips
  // fully-claimed blocks one load at a time in bitmap mode.
  std::uint64_t next_unclaimed(std::uint64_t from) const noexcept;

  // Adapter satisfying core::claim_flags so run_claim_loop drives this set.
  struct flags_adapter {
    partition_set& set;
    bool test_and_set(std::uint64_t r) noexcept { return !set.try_claim(r); }
  };
  flags_adapter flags() noexcept { return flags_adapter{*this}; }

 private:
  // Valid-partition mask for block b (all-ones except a trailing partial
  // block, which cannot occur for pow2 R >= 64 but is handled anyway).
  std::uint64_t block_mask(std::uint64_t b) const noexcept {
    const std::uint64_t lo = b << 6;
    const std::uint64_t n = r_ - lo >= 64 ? 64 : r_ - lo;
    return n == 64 ? ~0ull : (1ull << n) - 1;
  }

  std::int64_t begin_;
  std::int64_t end_;
  std::uint64_t r_;
  std::uint64_t lg_r_;
  std::int64_t base_size_;   // floor((end-begin)/R)
  std::int64_t remainder_;   // (end-begin) mod R
  std::vector<std::int64_t> weighted_bounds_;  // R+1 entries when weighted
  // Exactly one of these is non-null: per-partition padded flags (small
  // R) or the packed bitmap (R >= kBitmapThreshold).
  std::unique_ptr<padded<std::atomic<std::uint8_t>>[]> claimed_;
  std::unique_ptr<padded<std::atomic<std::uint64_t>>[]> words_;
  alignas(kCacheLine) std::atomic<std::uint64_t> claimed_count_{0};
};

}  // namespace hls::core

#include "sched/loop.h"

#include <algorithm>

#include "sched/policies.h"
#include "trace/loop_trace.h"
#include "util/bits.h"

namespace hls {

namespace {

// Records one loop span on the posting worker (emitted from the
// destructor so every exit path, including exception rethrow, is
// covered). Inactive unless event tracing is on.
class loop_span_guard {
 public:
  loop_span_guard(rt::runtime& rt, rt::worker& me, policy pol,
                  const loop_options& opt, std::int64_t n)
      : tel_(me.tel()), active_(tel_.events_on()), n_(n) {
    if (!active_) return;
    label_id_ = rt.tel().intern_label(
        opt.label != nullptr ? opt.label : policy_name(pol));
    t0_ = tel_.now();
  }

  ~loop_span_guard() {
    if (!active_) return;
    tel_.emit({t0_, tel_.now() - t0_, label_id_, n_,
               telemetry::event_kind::loop_span});
  }

 private:
  telemetry::worker_state& tel_;
  const bool active_;
  std::int64_t label_id_ = 0;
  std::int64_t n_;
  std::uint64_t t0_ = 0;
};

}  // namespace

void parallel_for(rt::runtime& rt, std::int64_t begin, std::int64_t end,
                  policy pol, chunk_body body, const loop_options& opt) {
  if (end <= begin) return;
  rt::worker& me = rt.current_worker();
  const std::int64_t n = end - begin;
  const std::uint32_t p = rt.num_workers();

  telemetry::bump(me.tel().counters.loops_posted);
  loop_span_guard span(rt, me, pol, opt, n);

  const std::int64_t grain =
      opt.grain > 0 ? opt.grain : default_grain(n, p);

  if (pol == policy::serial) {
    body(begin, end);
    if (opt.trace != nullptr) opt.trace->record(me.id(), begin, end);
    return;
  }

  auto ctx = std::make_shared<sched::loop_ctx>(begin, end, body, grain,
                                               opt.trace);

  switch (pol) {
    case policy::serial:
      return;  // handled above; unreachable

    case policy::dynamic_ws: {
      // Vanilla cilk_for: pure divide-and-conquer from the caller's deque;
      // idle workers join via random stealing only.
      sched::ws_subtask::run_span(me, ctx, begin, end);
      break;
    }

    case policy::static_part:
    case policy::dynamic_shared:
    case policy::guided:
    case policy::hybrid: {
      std::shared_ptr<rt::loop_record> rec;
      if (pol == policy::static_part) {
        rec = std::make_shared<sched::static_record>(ctx, p);
      } else if (pol == policy::dynamic_shared) {
        const std::int64_t chunk =
            opt.chunk > 0 ? opt.chunk : default_grain(n, p);
        rec = std::make_shared<sched::shared_queue_record>(ctx, chunk);
      } else if (pol == policy::guided) {
        rec = std::make_shared<sched::guided_record>(ctx, opt.min_chunk, p);
      } else {
        const std::uint32_t parts =
            opt.partitions > 0 ? opt.partitions : p;
        if (opt.iteration_weight) {
          rec = std::make_shared<sched::hybrid_record>(ctx, parts,
                                                       opt.iteration_weight);
        } else {
          rec = std::make_shared<sched::hybrid_record>(ctx, parts);
        }
      }
      const int slot = rt.loop_board().post(rec);
      rt.notify_work();
      if (slot < 0 && pol == policy::static_part) {
        // Board overflow: strict static needs every worker to arrive, which
        // cannot be guaranteed without a slot. Degrade to executing the
        // whole range on the posting worker (correctness over placement).
        ctx->run_chunk(me, begin, end);
      } else {
        rec->participate(me);
      }
      me.work_until([&] { return ctx->finished(); });
      rt.loop_board().clear(slot);
      ctx->rethrow_if_failed();
      return;
    }
  }

  me.work_until([&] { return ctx->finished(); });
  ctx->rethrow_if_failed();
}

}  // namespace hls

#include "runtime/worker.h"

#include <thread>

#include "faultsim/faultsim.h"
#include "runtime/runtime.h"
#include "runtime/task.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace hls::rt {

namespace {
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}
}  // namespace

worker::worker(runtime& rt, std::uint32_t id, std::uint64_t seed,
               telemetry::worker_state& tel)
    : rt_(rt), id_(id), rng_(seed), tel_(tel) {}

void worker::push(task* t) {
  deque_.push(t);
  rt_.notify_work();
}

task* worker::pop_local() {
  if (faultsim::injector* c = rt_.chaos();
      c != nullptr && c->fire(faultsim::hook::deque_pop, id_)) {
    // Skipped, not lost: the task stays queued for the next pop or a thief.
    telemetry::bump(tel_.counters.faults_injected);
    return nullptr;
  }
  return deque_.pop();
}

void worker::run(task* t) {
  telemetry::bump(tel_.counters.tasks_run);
  // Last-resort exception boundary: loop chunks and task_group callables
  // catch their own exceptions, so anything arriving here escaped a raw
  // task's execute(). Swallowing it would lose it and rethrowing would
  // kill the worker thread (std::terminate); instead it parks on the
  // runtime for take_orphan_exception() and the worker survives.
  const auto guarded = [&] {
    try {
      t->execute(*this);
    } catch (...) {
      telemetry::bump(tel_.counters.exceptions_caught);
      rt_.capture_orphan(std::current_exception());
    }
  };
  if (tel_.events_on()) {
    const std::uint64_t t0 = tel_.now();
    guarded();
    tel_.emit({t0, tel_.now() - t0, 0, 0, telemetry::event_kind::task_span});
  } else {
    guarded();
  }
  delete t;
}

void worker::drain_local() {
  while (task* t = pop_local()) run(t);
}

bool worker::try_steal_round() {
  const std::uint32_t p = rt_.num_workers();
  if (p <= 1) return false;
  faultsim::injector* chaos = rt_.chaos();
  if (chaos != nullptr) chaos->maybe_delay(id_);
  const std::uint64_t t0 = tel_.now();
  std::uint64_t probes = 0;
  // One round: up to P random victim probes (standard randomized stealing;
  // the round bound keeps the idle loop responsive to board posts).
  for (std::uint32_t attempt = 0; attempt < p; ++attempt) {
    const auto victim =
        static_cast<std::uint32_t>(rng_.next_below(p - 1));
    const std::uint32_t v = victim >= id_ ? victim + 1 : victim;
    ++probes;
    if (chaos != nullptr && chaos->fire(faultsim::hook::steal_probe, id_)) {
      // Forced empty probe: counts as a miss, the victim keeps its task.
      telemetry::bump(tel_.counters.faults_injected);
      continue;
    }
    if (task* t = rt_.worker_at(v).deque().steal()) {
      telemetry::bump(tel_.counters.steal_probes, probes);
      telemetry::bump(tel_.counters.steals);
      telemetry::bump(tel_.counters.steal_latency_ns, tel_.now() - t0);
      tel_.steal_probe_hist.record(probes);
      if (tel_.events_on()) {
        tel_.emit({tel_.now(), 0, static_cast<std::int64_t>(v),
                   static_cast<std::int64_t>(probes),
                   telemetry::event_kind::steal});
      }
      run(t);
      return true;
    }
  }
  telemetry::bump(tel_.counters.steal_probes, probes);
  tel_.steal_probe_hist.record(probes);
  return false;
}

bool worker::try_progress() {
  if (task* t = pop_local()) {
    run(t);
    return true;
  }
  if (rt_.loop_board().visit(*this)) {
    telemetry::bump(tel_.counters.board_participations);
    return true;
  }
  return try_steal_round();
}

void worker::pause(int idle_count) {
  if (idle_count < 4) {
    cpu_relax();
  } else if (idle_count < 16) {
    std::this_thread::yield();
  } else {
    const std::uint64_t t0 = tel_.now();
    // Count only sleeps that actually waited: idle_sleep returns false
    // when it bails out immediately (work became visible during the
    // check-then-sleep re-check, or the runtime is stopping), and those
    // must not inflate the sleep counter or emit zero-length idle spans.
    if (!rt_.idle_sleep()) return;
    telemetry::bump(tel_.counters.idle_sleeps);
    const std::uint64_t dt = tel_.now() - t0;
    telemetry::bump(tel_.counters.idle_sleep_ns, dt);
    if (tel_.events_on()) {
      tel_.emit({t0, dt, 0, 0, telemetry::event_kind::idle_span});
    }
  }
}

}  // namespace hls::rt

#include "runtime/deque.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "runtime/task.h"

namespace hls::rt {
namespace {

// A task that just remembers an id; never executed in these tests.
class marker_task final : public task {
 public:
  explicit marker_task(std::int64_t id) : id_(id) {}
  void execute(worker&) override {}
  std::int64_t id() const noexcept { return id_; }

 private:
  std::int64_t id_;
};

TEST(Deque, PopOnEmptyReturnsNull) {
  ws_deque d;
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
  EXPECT_EQ(d.size_estimate(), 0);
}

TEST(Deque, LifoForOwner) {
  ws_deque d;
  marker_task a(1), b(2), c(3);
  d.push(&a);
  d.push(&b);
  d.push(&c);
  EXPECT_EQ(d.size_estimate(), 3);
  EXPECT_EQ(d.pop(), &c);
  EXPECT_EQ(d.pop(), &b);
  EXPECT_EQ(d.pop(), &a);
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(Deque, FifoForThief) {
  ws_deque d;
  marker_task a(1), b(2), c(3);
  d.push(&a);
  d.push(&b);
  d.push(&c);
  EXPECT_EQ(d.steal(), &a);
  EXPECT_EQ(d.steal(), &b);
  EXPECT_EQ(d.steal(), &c);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(Deque, OwnerAndThiefMeetInTheMiddle) {
  ws_deque d;
  marker_task a(1), b(2);
  d.push(&a);
  d.push(&b);
  EXPECT_EQ(d.steal(), &a);
  EXPECT_EQ(d.pop(), &b);
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(Deque, GrowsPastInitialCapacity) {
  ws_deque d(4);
  std::vector<std::unique_ptr<marker_task>> tasks;
  constexpr int kN = 1000;
  for (int i = 0; i < kN; ++i) {
    tasks.push_back(std::make_unique<marker_task>(i));
    d.push(tasks.back().get());
  }
  EXPECT_EQ(d.size_estimate(), kN);
  for (int i = kN - 1; i >= 0; --i) {
    auto* t = static_cast<marker_task*>(d.pop());
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->id(), i);
  }
}

TEST(Deque, InterleavedPushPop) {
  ws_deque d(2);
  std::vector<std::unique_ptr<marker_task>> tasks;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 7; ++i) {
      tasks.push_back(std::make_unique<marker_task>(round * 10 + i));
      d.push(tasks.back().get());
    }
    for (int i = 0; i < 5; ++i) EXPECT_NE(d.pop(), nullptr);
  }
  // 100 * 2 remain
  int remaining = 0;
  while (d.pop() != nullptr) ++remaining;
  EXPECT_EQ(remaining, 200);
}

TEST(DequeBatch, EmptyDequeYieldsNothing) {
  ws_deque d, mine;
  std::uint32_t k = 99;
  EXPECT_EQ(d.steal_batch(mine, &k), nullptr);
  EXPECT_EQ(k, 0u);
  EXPECT_EQ(mine.size_estimate(), 0);
}

TEST(DequeBatch, TakesHalfOldestFirst) {
  ws_deque d, mine;
  marker_task t0(0), t1(1), t2(2), t3(3), t4(4), t5(5), t6(6), t7(7);
  marker_task* all[] = {&t0, &t1, &t2, &t3, &t4, &t5, &t6, &t7};
  for (auto* t : all) d.push(t);
  std::uint32_t k = 0;
  auto* got = static_cast<marker_task*>(d.steal_batch(mine, &k));
  // Half of 8 visible tasks: the oldest returns, three seed `mine`.
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->id(), 0);
  EXPECT_EQ(k, 4u);
  EXPECT_EQ(mine.size_estimate(), 3);
  EXPECT_EQ(d.size_estimate(), 4);
  // The surplus was pushed in victim (FIFO) order, so the thief's LIFO
  // pops run newest-of-the-batch first...
  EXPECT_EQ(static_cast<marker_task*>(mine.pop())->id(), 3);
  EXPECT_EQ(static_cast<marker_task*>(mine.pop())->id(), 2);
  EXPECT_EQ(static_cast<marker_task*>(mine.pop())->id(), 1);
  // ...and the victim keeps its own newest tasks.
  EXPECT_EQ(static_cast<marker_task*>(d.pop())->id(), 7);
}

TEST(DequeBatch, SingleElementTransfersAlone) {
  ws_deque d, mine;
  marker_task a(42);
  d.push(&a);
  std::uint32_t k = 0;
  EXPECT_EQ(d.steal_batch(mine, &k), &a);
  EXPECT_EQ(k, 1u);
  EXPECT_EQ(mine.size_estimate(), 0);
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(DequeBatch, ClaimIsCappedAtBatchMax) {
  ws_deque d, mine;
  std::vector<std::unique_ptr<marker_task>> tasks;
  for (int i = 0; i < 40; ++i) {
    tasks.push_back(std::make_unique<marker_task>(i));
    d.push(tasks.back().get());
  }
  std::uint32_t k = 0;
  auto* got = static_cast<marker_task*>(d.steal_batch(mine, &k));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->id(), 0);
  EXPECT_EQ(k, static_cast<std::uint32_t>(ws_deque::kStealBatchMax));
  EXPECT_EQ(d.size_estimate(), 40 - ws_deque::kStealBatchMax);
}

TEST(DequeBatch, OwnerKeepsLifoUnderNearEmptyLock) {
  // With two tasks a batch claims only one — (2 + 1) / 2 — and the owner's
  // near-empty locked pop must still return the newest task.
  ws_deque d, mine;
  marker_task a(0), b(1);
  d.push(&a);
  d.push(&b);
  std::uint32_t k = 0;
  EXPECT_EQ(d.steal_batch(mine, &k), &a);
  EXPECT_EQ(k, 1u);
  EXPECT_EQ(d.pop(), &b);
  EXPECT_EQ(d.pop(), nullptr);
}

// Stress: one owner pushing/popping, several thieves stealing. Every task
// must be obtained exactly once across all parties.
class DequeStress : public ::testing::TestWithParam<int> {};

TEST_P(DequeStress, EveryTaskTakenExactlyOnce) {
  const int thieves = GetParam();
  constexpr int kTasks = 20000;
  ws_deque d(64);
  std::vector<std::unique_ptr<marker_task>> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(std::make_unique<marker_task>(i));
  }

  std::vector<std::atomic<int>> taken(kTasks);
  for (auto& t : taken) t.store(0);
  std::atomic<bool> done{false};

  std::vector<std::thread> pool;
  for (int t = 0; t < thieves; ++t) {
    pool.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (auto* t2 = static_cast<marker_task*>(d.steal())) {
          taken[t2->id()].fetch_add(1);
        }
      }
      // Final drain in case the owner finished while we dozed.
      while (auto* t2 = static_cast<marker_task*>(d.steal())) {
        taken[t2->id()].fetch_add(1);
      }
    });
  }

  // Owner: push all, popping occasionally (mixed workload).
  for (int i = 0; i < kTasks; ++i) {
    d.push(tasks[i].get());
    if (i % 3 == 0) {
      if (auto* t2 = static_cast<marker_task*>(d.pop())) {
        taken[t2->id()].fetch_add(1);
      }
    }
  }
  while (auto* t2 = static_cast<marker_task*>(d.pop())) {
    taken[t2->id()].fetch_add(1);
  }
  done.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();

  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(taken[i].load(), 1) << "task " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Thieves, DequeStress, ::testing::Values(1, 2, 4));

// Stress with batched thieves: each thief batch-steals into its own deque
// and drains it locally, while the owner pushes (with a tiny initial
// capacity, so the ring grows under concurrent batch claims) and pops
// frequently enough to keep the deque near-empty — exercising the top-lock
// path against in-flight batch claims. Exactly-once must still hold.
class DequeBatchStress : public ::testing::TestWithParam<int> {};

TEST_P(DequeBatchStress, EveryTaskTakenExactlyOnce) {
  const int thieves = GetParam();
  constexpr int kTasks = 20000;
  ws_deque d(4);  // forces repeated grow() during live batch claims
  std::vector<std::unique_ptr<marker_task>> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(std::make_unique<marker_task>(i));
  }

  std::vector<std::atomic<int>> taken(kTasks);
  for (auto& t : taken) t.store(0);
  std::atomic<bool> done{false};

  std::vector<std::thread> pool;
  for (int t = 0; t < thieves; ++t) {
    pool.emplace_back([&] {
      ws_deque mine(8);
      const auto drain = [&] {
        while (auto* t2 = static_cast<marker_task*>(mine.pop())) {
          taken[t2->id()].fetch_add(1);
        }
      };
      while (!done.load(std::memory_order_acquire)) {
        std::uint32_t k = 0;
        if (auto* t2 = static_cast<marker_task*>(d.steal_batch(mine, &k))) {
          taken[t2->id()].fetch_add(1);
          drain();
        }
      }
      // Final sweep in case the owner finished while we dozed.
      std::uint32_t k = 0;
      while (auto* t2 = static_cast<marker_task*>(d.steal_batch(mine, &k))) {
        taken[t2->id()].fetch_add(1);
        drain();
      }
    });
  }

  // Owner: push all, popping every other push so the deque hovers around
  // the near-empty regime where pops contend with batch claims.
  for (int i = 0; i < kTasks; ++i) {
    d.push(tasks[i].get());
    if (i % 2 == 0) {
      if (auto* t2 = static_cast<marker_task*>(d.pop())) {
        taken[t2->id()].fetch_add(1);
      }
    }
  }
  while (auto* t2 = static_cast<marker_task*>(d.pop())) {
    taken[t2->id()].fetch_add(1);
  }
  done.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();

  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(taken[i].load(), 1) << "task " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Thieves, DequeBatchStress, ::testing::Values(1, 2, 4));

// Deterministic regression (locked-pop ABA): a batch claim is held in
// flight (via the test gate between steal_batch's slot reads and its CAS)
// while the owner lock-pops through the claim range and refills the ring
// slots with fresh tasks. top_'s index is back at the claim's expected
// value, so before the generation counter the stale CAS *succeeded* —
// handing the thief a task the owner had already taken and stranding the
// refills below top_. With the generation bumped on every locked-pop
// unlock, the stale claim must fail and every task must stay reachable.
TEST(DequeBatch, LockedPopsInvalidateInFlightBatchClaim) {
  struct gate_ctx {
    std::atomic<bool> reached{false};
    std::atomic<bool> release{false};
  };
  static constexpr auto gate_fn = [](void* p) {
    auto* g = static_cast<gate_ctx*>(p);
    if (g->reached.exchange(true, std::memory_order_acq_rel)) return;
    while (!g->release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  };

  ws_deque d(16);
  marker_task t0(0), t1(1), t2(2), t3(3), r1(11), r2(12), r3(13);
  for (auto* t : {&t0, &t1, &t2, &t3}) d.push(t);

  gate_ctx g;
  ws_deque::set_batch_claim_gate(+gate_fn, &g);
  task* got = &t0;
  std::uint32_t k = 99;
  std::thread thief([&] {
    ws_deque mine(8);
    // 4 visible tasks -> want = 2: the claim is prepared over {t0, t1}.
    got = d.steal_batch(mine, &k);
    EXPECT_EQ(mine.pop(), nullptr);  // a failed claim deposits nothing
  });
  while (!g.reached.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // Owner: three locked near-empty pops — the last consumes t1, inside the
  // thief's prepared claim range — then refill the freed ring slots.
  EXPECT_EQ(d.pop(), &t3);
  EXPECT_EQ(d.pop(), &t2);
  EXPECT_EQ(d.pop(), &t1);
  d.push(&r1);
  d.push(&r2);
  d.push(&r3);
  g.release.store(true, std::memory_order_release);
  thief.join();
  ws_deque::set_batch_claim_gate(nullptr, nullptr);

  EXPECT_EQ(got, nullptr);
  EXPECT_EQ(k, 0u);
  // Nothing double-taken, nothing stranded: the owner still holds exactly
  // the three refills and the untouched oldest task.
  EXPECT_EQ(d.pop(), &r3);
  EXPECT_EQ(d.pop(), &r2);
  EXPECT_EQ(d.pop(), &r1);
  EXPECT_EQ(d.pop(), &t0);
  EXPECT_EQ(d.pop(), nullptr);
}

// Regression (locked-pop ABA): pop()'s near-empty path used to restore
// top_'s raw pre-lock value on unlock, so a batch claim prepared before a
// run of locked pops could still commit afterwards — re-taking slots the
// owner had already consumed (double execution) and stranding top_ above
// bottom_ (later pushes below it were lost). The owner here oscillates
// strictly inside the near-empty band without ever draining, so top_'s
// index only moves when a thief's claim lands and every owner pop goes
// through the lock — the regime where only the generation bump makes a
// stale batch claim fail. Exactly-once must hold.
TEST(DequeBatch, NearEmptyOscillationSurvivesStaleBatchClaims) {
  constexpr int kTotal = 40000;
  constexpr int kThieves = 2;
  ws_deque d(16);
  std::vector<std::unique_ptr<marker_task>> tasks;
  tasks.reserve(kTotal);
  for (int i = 0; i < kTotal; ++i) {
    tasks.push_back(std::make_unique<marker_task>(i));
  }
  std::vector<std::atomic<int>> taken(kTotal);
  for (auto& t : taken) t.store(0);
  std::atomic<bool> done{false};

  std::vector<std::thread> pool;
  for (int t = 0; t < kThieves; ++t) {
    pool.emplace_back([&] {
      ws_deque mine(8);
      const auto drain = [&] {
        while (auto* t2 = static_cast<marker_task*>(mine.pop())) {
          taken[t2->id()].fetch_add(1);
        }
      };
      while (!done.load(std::memory_order_acquire)) {
        std::uint32_t k = 0;
        if (auto* t2 = static_cast<marker_task*>(d.steal_batch(mine, &k))) {
          taken[t2->id()].fetch_add(1);
          drain();
        }
      }
      std::uint32_t k = 0;
      while (auto* t2 = static_cast<marker_task*>(d.steal_batch(mine, &k))) {
        taken[t2->id()].fetch_add(1);
        drain();
      }
    });
  }

  // Owner: refill to 7 visible (just under kStealBatchMax, so every pop
  // takes the locked near-empty path), then pop down to 1 — never taking
  // the last element. Each refill rewrites the ring slots the pops just
  // consumed, which is what turns a stale claim into double execution.
  int next = 0;
  while (next < kTotal) {
    while (d.size_estimate() < 7 && next < kTotal) {
      d.push(tasks[next++].get());
    }
    for (int i = 0; i < 6; ++i) {
      auto* t2 = static_cast<marker_task*>(d.pop());
      if (t2 == nullptr) break;
      taken[t2->id()].fetch_add(1);
    }
  }
  while (auto* t2 = static_cast<marker_task*>(d.pop())) {
    taken[t2->id()].fetch_add(1);
  }
  done.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();

  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(taken[i].load(), 1) << "task " << i;
  }
}

// The single-element race, isolated: one task in the deque, the owner pops
// while a batch thief claims. Exactly one side may win each round.
TEST(DequeBatch, SingleElementRaceResolvesExactlyOnce) {
  constexpr int kRounds = 5000;
  ws_deque d(4);
  marker_task only(0);
  std::atomic<int> phase{0};  // round counter, advanced by the owner
  std::atomic<int> winners{0};
  std::atomic<bool> done{false};

  std::thread thief([&] {
    ws_deque mine(4);
    int seen = 0;
    while (!done.load(std::memory_order_acquire)) {
      if (phase.load(std::memory_order_acquire) > seen) {
        std::uint32_t k = 0;
        if (d.steal_batch(mine, &k) != nullptr) {
          winners.fetch_add(1);
          EXPECT_EQ(k, 1u);
          EXPECT_EQ(mine.pop(), nullptr);
        }
        seen = phase.load(std::memory_order_acquire);
      }
    }
  });

  int owner_wins = 0;
  for (int r = 0; r < kRounds; ++r) {
    d.push(&only);
    phase.store(r + 1, std::memory_order_release);
    if (d.pop() != nullptr) {
      ++owner_wins;
    } else {
      // Thief won this round; wait until it has consumed the task so the
      // next round starts from an empty deque.
      while (winners.load(std::memory_order_acquire) + owner_wins <= r) {
      }
    }
  }
  done.store(true, std::memory_order_release);
  thief.join();
  EXPECT_EQ(owner_wins + winners.load(), kRounds);
}

}  // namespace
}  // namespace hls::rt

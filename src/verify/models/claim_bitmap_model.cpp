// Verification model for the batched claim-flag bitmap
// (core/partition_set.h's R >= kBitmapThreshold storage): `workers`
// threads run the REAL run_claim_loop template over a flags adapter whose
// bits live packed in ONE 64-bit word — mirroring the bitmap-mode
// partition_set::try_claim orderings exactly (acq_rel fetch_or of the
// partition's bit, acq_rel count bump on a win) — then run the
// word-at-a-time leftover sweep mirroring partition_set::claim_block (an
// acquire load that skips a full word, else one acq_rel fetch_or of the
// whole valid mask whose newly-set bits are this worker's wins).
//
// One partition's per-bit claims permanently lie "already claimed"
// without setting the bit (the faultsim claim_fail analog), so the claim
// loops always leave a leftover and the sweep is load-bearing in every
// execution. Checked:
//   * Theorem 3 (exactly-once): every partition executed exactly once
//     across per-bit claim-loop wins and batched sweep wins, with full
//     coverage;
//   * Lemma 4: each worker's max_consec_failures <= lg R + 1 even with
//     the injected failures (the bound is structural — each failure
//     strictly raises lsb(i) — so it must hold no matter why a claim
//     failed);
//   * the claimed-total count agrees with R at quiescence.
//
// The broken variant replaces the sweep's fetch_or with a non-atomic
// load-then-store read-modify-write. Two workers sweeping concurrently
// can then both observe the leftover bit clear and both "win" it — a
// double-executed partition, caught at preemption bound <= 3.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/claim.h"
#include "verify/models/models.h"
#include "verify/shim.h"

namespace hls::verify {
namespace {

constexpr std::uint64_t kPartitions = 8;  // one bitmap word, lg R = 3
constexpr std::uint64_t kLiar = 5;        // per-bit claims on 5 always lie
constexpr std::uint64_t kValidMask = (std::uint64_t{1} << kPartitions) - 1;
constexpr std::uint32_t kWorkers = 2;

class claim_bitmap_model final : public model {
  struct state {
    hls::verify::atomic<std::uint64_t> word{0};
    hls::verify::atomic<std::uint64_t> claimed_total{0};
    // Plain bookkeeping (cooperatively scheduled, so no real race): how
    // many times each partition was executed.
    std::vector<std::uint32_t> claim_count = std::vector<std::uint32_t>(
        kPartitions, 0);
  };

  // claim_flags adapter mirroring bitmap-mode partition_set::try_claim,
  // with the permanent lie on kLiar in front (reports claimed WITHOUT
  // setting the bit, like a fired claim_fail fault).
  struct flags_adapter {
    state& s;
    bool test_and_set(std::uint64_t r) noexcept {
      if (r == kLiar) return true;
      const std::uint64_t bit = std::uint64_t{1} << r;
      const std::uint64_t prev =
          s.word.fetch_or(bit, std::memory_order_acq_rel);
      if ((prev & bit) == 0) {
        s.claimed_total.fetch_add(1, std::memory_order_acq_rel);
        return false;  // this call won the claim
      }
      return true;
    }
  };

 public:
  explicit claim_bitmap_model(bool broken_nonatomic)
      : broken_(broken_nonatomic),
        name_(broken_nonatomic ? "claim-bitmap-broken-nonatomic"
                               : "claim-bitmap") {}

  const char* name() const override { return name_; }
  int threads() const override { return kWorkers; }

  void setup() override { st_ = std::make_unique<state>(); }

  void run(int t) override {
    state& s = *st_;
    flags_adapter fl{s};
    const auto w = static_cast<std::uint32_t>(t);
    const core::claim_stats st = core::run_claim_loop(
        w, kPartitions, fl,
        [&](std::uint64_t r, std::uint64_t /*index*/) {
          check(r < kPartitions, "claimed partition out of range");
          ++s.claim_count[r];
        },
        [](std::uint64_t, std::uint64_t, bool) {});
    if (st.max_consec_failures > 4) {  // lg R + 1 = 4
      fail_now("Lemma 4 violated: worker " + std::to_string(w) + " saw " +
               std::to_string(st.max_consec_failures) +
               " consecutive failures > lg R + 1 = 4");
    }
    sweep(w);
  }

  void check_final() override {
    state& s = *st_;
    std::uint64_t executed = 0;
    for (std::uint64_t r = 0; r < kPartitions; ++r) {
      if (s.claim_count[r] > 1) {
        fail_now("Theorem 3 violated: partition " + std::to_string(r) +
                 " executed " + std::to_string(s.claim_count[r]) + " times");
      }
      executed += s.claim_count[r];
    }
    if (executed != kPartitions) {
      fail_now("coverage violated: " + std::to_string(executed) + " of " +
               std::to_string(kPartitions) + " partitions executed");
    }
    check(s.word.raw() == kValidMask, "a partition bit was never set");
    check(s.claimed_total.raw() == kPartitions, "claimed_total drifted");
  }

 private:
  // The leftover sweep over the single block, mirroring
  // partition_set::claim_block + hybrid_record::rescue_sweep.
  void sweep(std::uint32_t /*w*/) {
    state& s = *st_;
    std::uint64_t won;
    if (broken_) {
      // BROKEN: non-atomic RMW — the load and the store are separate op
      // points, so another worker's sweep (or per-bit claim) between them
      // is lost and both sides think they won the same bits.
      const std::uint64_t old = s.word.load(std::memory_order_acquire);
      if ((old & kValidMask) == kValidMask) return;
      s.word.store(old | kValidMask, std::memory_order_release);
      won = kValidMask & ~old;
    } else {
      const std::uint64_t cur = s.word.load(std::memory_order_acquire);
      if ((cur & kValidMask) == kValidMask) return;  // full: no RMW
      const std::uint64_t prev =
          s.word.fetch_or(kValidMask, std::memory_order_acq_rel);
      won = kValidMask & ~prev;
    }
    for (std::uint64_t m = won; m != 0; m &= m - 1) {
      std::uint64_t r = 0;
      while ((m & (std::uint64_t{1} << r)) == 0) ++r;
      s.claimed_total.fetch_add(1, std::memory_order_acq_rel);
      ++s.claim_count[r];
    }
  }

  bool broken_;
  const char* name_;
  std::unique_ptr<state> st_;
};

}  // namespace

std::unique_ptr<model> make_claim_bitmap_model(bool broken_nonatomic) {
  return std::make_unique<claim_bitmap_model>(broken_nonatomic);
}

}  // namespace hls::verify

// Shared declarations for the NAS Parallel Benchmark kernels.
//
// The five NPB kernels (ep, is, cg, mg, ft) are reimplemented from scratch
// in C++20 on top of the hls loop API, at laptop-scale problem classes.
// Each kernel self-verifies (NPB's class-specific reference values do not
// apply to rescaled classes) and exposes a workload_spec describing its
// parallel-loop structure for the discrete-event simulator (Fig. 3).
#pragma once

#include <string>

#include "sched/loop.h"
#include "sim/workload.h"

namespace hls::workloads::nas {

struct kernel_result {
  bool verified = false;
  double checksum = 0.0;   // kernel-specific scalar for cross-run equality
  std::string detail;      // human-readable verification summary
  double mflops_proxy = 0; // operation count / 1e6 (not timed here)
};

}  // namespace hls::workloads::nas

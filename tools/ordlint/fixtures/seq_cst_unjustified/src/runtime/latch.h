// Seeded-broken fixture: explicit seq_cst with no justification. The
// store below must trip error[ordlint:seq-cst-unjustified]; the load
// carries a tag and must pass.
#pragma once

#include <atomic>

namespace fixture {

class latch {
 public:
  void open() {
    open_.store(true, std::memory_order_seq_cst);  // no tag, no contract
  }

  bool is_open() const {
    // ordlint: seq_cst because fixture demonstrates the accepted tag form
    return open_.load(std::memory_order_seq_cst);
  }

 private:
  std::atomic<bool> open_{false};
};

}  // namespace fixture

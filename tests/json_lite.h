// Minimal recursive-descent JSON parser for tests. Validates the whole
// input (no trailing garbage) and builds a small DOM, so the telemetry
// tests can round-trip the emitted Chrome trace / JSON-lines output
// without an external dependency.
#pragma once

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace hls::json_lite {

struct value;
using array = std::vector<value>;
using object = std::map<std::string, value>;

struct value {
  std::variant<std::nullptr_t, bool, double, std::string, array, object> v =
      nullptr;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v); }
  bool is_bool() const { return std::holds_alternative<bool>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_array() const { return std::holds_alternative<array>(v); }
  bool is_object() const { return std::holds_alternative<object>(v); }

  bool as_bool() const { return std::get<bool>(v); }
  double as_number() const { return std::get<double>(v); }
  const std::string& as_string() const { return std::get<std::string>(v); }
  const array& as_array() const { return std::get<array>(v); }
  const object& as_object() const { return std::get<object>(v); }

  // Object member access; nullptr when absent or not an object.
  const value* get(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto it = as_object().find(key);
    return it == as_object().end() ? nullptr : &it->second;
  }
};

namespace detail {

class parser {
 public:
  parser(const char* p, const char* end) : p_(p), end_(end) {}

  std::optional<value> run() {
    value out;
    if (!parse_value(out)) return std::nullopt;
    skip_ws();
    if (p_ != end_) return std::nullopt;  // trailing garbage
    return out;
  }

 private:
  void skip_ws() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool literal(const char* s) {
    const char* q = p_;
    while (*s != '\0') {
      if (q == end_ || *q != *s) return false;
      ++q, ++s;
    }
    p_ = q;
    return true;
  }

  bool parse_value(value& out) {
    skip_ws();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out.v = std::move(s);
        return true;
      }
      case 't': out.v = true; return literal("true");
      case 'f': out.v = false; return literal("false");
      case 'n': out.v = nullptr; return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(value& out) {
    ++p_;  // '{'
    object o;
    skip_ws();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      out.v = std::move(o);
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      value v;
      if (!parse_value(v)) return false;
      o.emplace(std::move(key), std::move(v));
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        out.v = std::move(o);
        return true;
      }
      return false;
    }
  }

  bool parse_array(value& out) {
    ++p_;  // '['
    array a;
    skip_ws();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      out.v = std::move(a);
      return true;
    }
    for (;;) {
      value v;
      if (!parse_value(v)) return false;
      a.push_back(std::move(v));
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        out.v = std::move(a);
        return true;
      }
      return false;
    }
  }

  bool parse_string(std::string& out) {
    if (p_ == end_ || *p_ != '"') return false;
    ++p_;
    out.clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p_ == end_) return false;
      const char esc = *p_++;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (p_ == end_) return false;
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // Tests only emit ASCII escapes; anything else keeps a marker.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: return false;
      }
    }
    if (p_ == end_) return false;
    ++p_;  // closing '"'
    return true;
  }

  bool parse_number(value& out) {
    // Validate the strict JSON grammar, then convert with strtod.
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    int int_digits = 0;
    while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_, ++int_digits;
    if (int_digits == 0) return false;
    if (p_ != end_ && *p_ == '.') {
      ++p_;
      int frac_digits = 0;
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_, ++frac_digits;
      if (frac_digits == 0) return false;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      int exp_digits = 0;
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_, ++exp_digits;
      if (exp_digits == 0) return false;
    }
    out.v = std::strtod(std::string(start, p_).c_str(), nullptr);
    return true;
  }

  const char* p_;
  const char* end_;
};

}  // namespace detail

inline std::optional<value> parse(const std::string& s) {
  return detail::parser(s.data(), s.data() + s.size()).run();
}

}  // namespace hls::json_lite

// Synchronization traits: the seam between the shipping runtime and the
// model-checking harness.
//
// The lock-free protocol cores (runtime/deque_core.h, runtime/
// parking_core.h, runtime/range_slot_core.h, core/claim.h) are header
// templates parameterized over a Traits type that supplies every
// synchronization primitive they touch:
//
//   Traits::atomic<T>   — std::atomic<T> in shipping builds,
//                         verify::atomic<T> under the harness
//   Traits::mutex       — annotated_mutex / verify::mutex
//   Traits::condvar     — annotated_condvar / verify::cond_slot
//   Traits::var<T>      — plain (non-atomic) shared field; a bare T in
//                         shipping builds, a race-checked cell under the
//                         harness (this is what lets the vector-clock
//                         checker catch a missing release/acquire edge as
//                         a data race on the field the edge protects)
//   Traits::fence(mo)   — std::atomic_thread_fence / instrumented fence
//   Traits::pause()     — spin-wait hint; under the harness a scheduler
//                         yield that blocks the spinner until another
//                         thread mutates shared state (making bounded
//                         exploration of spin loops terminate)
//
// real_traits below is the shipping instantiation: every member is a bare
// alias or an always-inline forwarder, so the instantiated cores compile
// to exactly the code the hand-written versions produced (checked by the
// BM_SpanOverhead / BM_BatchSteal benchmarks). The harness instantiation
// lives in verify/shim.h.
#pragma once

#include <atomic>

#include "util/thread_safety.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#else
#include <thread>
#endif

namespace hls::sync {

// Plain shared field wrapper for shipping builds: loads and stores compile
// to direct member accesses. The explicit load()/store() spelling exists
// so the harness build can interpose a race check on every access.
template <typename T>
class plain_var {
 public:
  constexpr plain_var() = default;
  constexpr explicit plain_var(T v) : v_(v) {}

  T load() const noexcept { return v_; }
  void store(T v) noexcept { v_ = v; }

  // Checker-bypassing access; identical to load() in shipping builds.
  T raw() const noexcept { return v_; }

 private:
  T v_{};
};

struct real_traits {
  template <typename T>
  using atomic = std::atomic<T>;

  using mutex = hls::annotated_mutex;
  using condvar = hls::annotated_condvar;

  template <typename T>
  using var = plain_var<T>;

  static void fence(std::memory_order mo) noexcept {
    std::atomic_thread_fence(mo);
  }

  static void pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#else
    std::this_thread::yield();
#endif
  }
};

}  // namespace hls::sync

// Internal policy implementations behind parallel_for.
//
// Each work-sharing policy is a loop_record posted on the runtime's board;
// dynamic_ws is pure deque work. Exposed in a header (rather than an
// anonymous namespace) so the tests can exercise records directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "core/partition_set.h"
#include "runtime/board.h"
#include "runtime/task.h"
#include "sched/loop.h"
#include "util/cacheline.h"

namespace hls::sched {

// State shared by every chunk of one parallel loop. Heap-allocated
// (shared_ptr) because stolen subtasks and board visitors may hold
// references until the last chunk retires.
struct loop_ctx {
  // Why this loop stopped handing out bodies (maps onto loop_status).
  enum : std::uint8_t { kRunning = 0, kCancelled = 1, kDeadline = 2 };

  loop_ctx(std::int64_t b, std::int64_t e, chunk_body body_,
           std::int64_t grain_, trace::loop_trace* trace_)
      : begin(b), end(e), body(body_), grain(grain_), trace(trace_),
        remaining(e - b) {}

  const std::int64_t begin;
  const std::int64_t end;
  const chunk_body body;
  const std::int64_t grain;
  trace::loop_trace* const trace;
  alignas(kCacheLine) std::atomic<std::int64_t> remaining;

  // First exception thrown by any chunk body. Later chunks are skipped
  // (their iterations still retire, so the loop completes and the posting
  // worker can rethrow).
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  // Escape hatch (loop_options::eager_subtasks): route spans through the
  // eager ws_subtask divide-and-conquer path instead of the lazy range
  // slot. Set once by parallel_for before the loop is published.
  bool eager_split = false;

  // Cancellation/deadline state, set by parallel_for before the loop is
  // published. `cancel` borrows loop_options::cancel's flag (the options
  // outlive the blocking call); deadline_at_ns is an absolute
  // telemetry::steady_now_ns instant, 0 for none.
  const std::atomic<bool>* cancel = nullptr;
  std::uint64_t deadline_at_ns = 0;
  std::atomic<std::uint8_t> stop{kRunning};
  alignas(kCacheLine) std::atomic<std::int64_t> skipped{0};

  bool finished() const noexcept {
    return remaining.load(std::memory_order_acquire) <= 0;
  }

  // Polls cancellation and the deadline; latches the first observed stop
  // reason. Called once per chunk (w pays for the deadline's clock read
  // only when a deadline is set and bumps deadline_expirations on the
  // latching transition).
  bool stop_requested(rt::worker& w) noexcept;

  // Rethrows the first captured body exception, if any. Called by the
  // posting worker after the loop completes.
  void rethrow_if_failed();

  // Runs body on [lo, hi) on worker w — unless the loop has failed or
  // stopped, in which case the body is skipped — records the trace and
  // chunk telemetry, then retires the iterations. The retire is last: once
  // remaining hits 0 the posting thread may return and the body callable
  // may die, so nothing may touch `body` afterwards.
  void run_chunk(rt::worker& w, std::int64_t lo, std::int64_t hi);

  // Retires n iterations. The call that drops `remaining` to zero wakes
  // every parked worker: the posting worker may be parked inside
  // work_until waiting on finished(), and that predicate flip has no other
  // tracked wake edge — without this broadcast it would only notice at the
  // park backstop.
  void retire(rt::worker& w, std::int64_t n) noexcept;

 private:
  // Latches `reason` if still running; returns true for the latching call.
  bool latch_stop(std::uint8_t reason) noexcept {
    std::uint8_t expect = kRunning;
    return stop.compare_exchange_strong(expect, reason,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
  }
};

// Divide-and-conquer subtask used by dynamic_ws and inside hybrid
// partitions: splits in half, pushing upper halves for thieves, until the
// range reaches the grain, then runs the body.
class ws_subtask final : public rt::task {
 public:
  ws_subtask(std::shared_ptr<loop_ctx> ctx, std::int64_t lo, std::int64_t hi)
      : ctx_(std::move(ctx)), lo_(lo), hi_(hi) {}

  // Subtasks are allocated once per exposed chunk on the scheduling hot
  // path: use the executing worker's block pool. Frees may happen on the
  // thief's thread; block_pool routes them back to the owner.
  static void* operator new(std::size_t bytes);
  static void operator delete(void* p) noexcept;

  void execute(rt::worker& w) override;

  // The splitting loop itself, callable without a heap-allocated task (the
  // root call and hybrid partition execution run it in place).
  static void run_span(rt::worker& w, const std::shared_ptr<loop_ctx>& ctx,
                       std::int64_t lo, std::int64_t hi);

 private:
  std::shared_ptr<loop_ctx> ctx_;
  std::int64_t lo_;
  std::int64_t hi_;
};

// Lazy steal-driven range splitting: the default span execution path for
// dynamic_ws and hybrid partitions. The owner publishes the span in its
// worker's range_slot (runtime/range_slot.h) and consumes it in
// grain-sized chunks with zero allocations and zero shared_ptr traffic;
// thieves split off the upper half via the slot's CAS and seed their own
// slots recursively, so the divide-and-conquer span bound is preserved
// while the no-steal fast path costs two shared stores per span total.
// The slot's two-word protocol carries full 64-bit spans, so even
// billion-iteration loops stay on this zero-alloc path; the only
// fallbacks to ws_subtask are an explicit opt-out (eager_split) and a
// busy slot (a nested loop inside a chunk body).
class range_span {
 public:
  static void run(rt::worker& w, const std::shared_ptr<loop_ctx>& ctx,
                  std::int64_t lo, std::int64_t hi);

 private:
  // range_slot::span_runner thunk: executes a stolen range on the thief.
  // No shared_ptr is taken: the stolen iterations are unretired, so the
  // loop cannot join — and ctx cannot die — before run_chunk retires them.
  static void run_stolen(rt::worker& w, void* ctx, std::int64_t lo,
                         std::int64_t hi);

  // Owner reserve/execute loop over an already-open slot, plus close and
  // counter rollup.
  static void owner_loop(rt::worker& w, loop_ctx* ctx, std::int64_t lo);
};

// Strict static partitioning: block k is executed serially by worker k and
// nobody else (omp static semantics).
class static_record final : public rt::loop_record {
 public:
  static_record(std::shared_ptr<loop_ctx> ctx, std::uint32_t num_workers);
  bool participate(rt::worker& w) override;
  bool finished() const noexcept override { return ctx_->finished(); }

 private:
  std::shared_ptr<loop_ctx> ctx_;
  std::uint32_t blocks_;
  std::unique_ptr<padded<std::atomic<std::uint8_t>>[]> taken_;
};

// Central queue of fixed-size chunks (omp dynamic semantics).
class shared_queue_record final : public rt::loop_record {
 public:
  shared_queue_record(std::shared_ptr<loop_ctx> ctx, std::int64_t chunk);
  bool participate(rt::worker& w) override;
  bool finished() const noexcept override { return ctx_->finished(); }

 private:
  std::shared_ptr<loop_ctx> ctx_;
  const std::int64_t chunk_;
  alignas(kCacheLine) std::atomic<std::int64_t> next_;
};

// Central queue of decreasing chunks (omp guided semantics):
// chunk = max(min_chunk, remaining / (2 P)).
class guided_record final : public rt::loop_record {
 public:
  guided_record(std::shared_ptr<loop_ctx> ctx, std::int64_t min_chunk,
                std::uint32_t num_workers);
  bool participate(rt::worker& w) override;
  bool finished() const noexcept override { return ctx_->finished(); }

 private:
  std::shared_ptr<loop_ctx> ctx_;
  const std::int64_t min_chunk_;
  const std::uint32_t p_;
  alignas(kCacheLine) std::atomic<std::int64_t> next_;
};

// The hybrid loop (paper Section III). participate() implements the
// DoHybridLoop steal protocol: check the arriving worker's designated
// partition; if unclaimed, run the claim loop under the worker's own ID,
// executing each claimed partition as a stealable divide-and-conquer span.
class hybrid_record final : public rt::loop_record {
 public:
  hybrid_record(std::shared_ptr<loop_ctx> ctx, std::uint32_t partitions);

  // Weighted initial partitioning (loop_options::iteration_weight).
  hybrid_record(std::shared_ptr<loop_ctx> ctx, std::uint32_t partitions,
                const std::function<double(std::int64_t)>& weight);
  bool participate(rt::worker& w) override;
  bool finished() const noexcept override { return ctx_->finished(); }

  // Watchdog escalation (board::request_rescue): latches the rescue sweep
  // on so every subsequent participate() linearly try_claims leftover
  // partitions instead of trusting the "designated claimed => subtree
  // covered" implication — a stalled owner's earmarked partitions become
  // claimable by any helper immediately. Idempotent, callable from any
  // thread, and exactly-once-safe: rescue only ever wins real claim flags.
  void request_rescue() noexcept override {
    rescue_armed_.store(true, std::memory_order_release);
  }
  bool rescue_armed() const noexcept {
    return rescue_armed_.load(std::memory_order_acquire);
  }

  const core::partition_set& partitions() const noexcept { return parts_; }
  // Mutable access so deterministic tests can pre-claim a "straggler's"
  // partition before arming a rescue.
  core::partition_set& partitions() noexcept { return parts_; }

 private:
  void execute_partition(rt::worker& w, std::uint64_t r);

  // Coverage restoration: forced claim failures (faultsim) can leave
  // partitions unclaimed after every claim loop has exited, which the
  // real protocol's "failure implies claimed" invariant rules out; a
  // watchdog rescue (request_rescue) deliberately asks for the same
  // sweep to strip a stalled owner of its unclaimed earmarks. The sweep
  // linearly try_claims leftovers so faults and stalls delay execution
  // but can never lose a partition. Returns true if it ran any.
  bool rescue_sweep(rt::worker& w);

  std::shared_ptr<loop_ctx> ctx_;
  core::partition_set parts_;
  std::atomic<bool> rescue_armed_{false};
};

}  // namespace hls::sched

#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace hls {

table::table(std::vector<std::string> header) : header_(std::move(header)) {}

table& table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string table::fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string table::fmt_pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule.append(widths[c] + 2, '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {

// JSON-lexable number: [-]digits[.digits][(e|E)[+-]digits]. Stricter than
// strtod on purpose — "nan", "inf", and hex would not be valid JSON.
bool is_json_number(const std::string& s) {
  std::size_t i = 0;
  if (i < s.size() && s[i] == '-') ++i;
  std::size_t int_digits = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i, ++int_digits;
  if (int_digits == 0) return false;
  if (i < s.size() && s[i] == '.') {
    ++i;
    std::size_t frac_digits = 0;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i, ++frac_digits;
    if (frac_digits == 0) return false;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    std::size_t exp_digits = 0;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i, ++exp_digits;
    if (exp_digits == 0) return false;
  }
  return i == s.size();
}

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_value(std::ostream& os, const std::string& s) {
  if (is_json_number(s)) {
    os << s;
  } else {
    json_string(os, s);
  }
}

}  // namespace

void table::print_json(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& extra) const {
  for (const auto& row : rows_) {
    os << '{';
    bool first = true;
    for (const auto& [k, v] : extra) {
      if (!first) os << ',';
      first = false;
      json_string(os, k);
      os << ':';
      json_value(os, v);
    }
    for (std::size_t c = 0; c < header_.size() && c < row.size(); ++c) {
      if (!first) os << ',';
      first = false;
      json_string(os, header_[c]);
      os << ':';
      json_value(os, row[c]);
    }
    os << "}\n";
  }
}

void table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace hls

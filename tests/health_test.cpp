// Health layer tests: runtime_options validation and CLI parsing, the
// watchdog's heartbeat classification (driven by manual scans for
// determinism), rescue escalation through the board into the hybrid
// record's earmark early-release, and the live service thread.
#include "runtime/health.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

#include "runtime/runtime.h"
#include "sched/loop.h"
#include "sched/policies.h"
#include "telemetry/registry.h"
#include "util/cli.h"

namespace hls {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------ runtime_options

TEST(RuntimeOptions, ValidateRejectsOutOfRangeKnobs) {
  rt::runtime_options o;
  o.num_workers = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = rt::runtime_options{};
  o.park_backstop = std::chrono::microseconds(0);
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = rt::runtime_options{};
  o.park_backstop = std::chrono::microseconds(2'000'000);  // > 1s
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = rt::runtime_options{};
  o.progress_budget = std::chrono::microseconds(5);  // < 10us
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = rt::runtime_options{};
  o.progress_budget = std::chrono::microseconds(61'000'000);  // > 60s
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = rt::runtime_options{};
  EXPECT_NO_THROW(o.validate());
}

TEST(RuntimeOptions, EffectiveProgressBudgetDefaultsTo16xBackstop) {
  rt::runtime_options o;
  o.park_backstop = 250us;
  EXPECT_EQ(o.effective_progress_budget(), 16 * 250us);
  o.progress_budget = 1234us;
  EXPECT_EQ(o.effective_progress_budget(), 1234us);
}

TEST(RuntimeOptions, FromCliParsesEveryKnob) {
  const char* argv[] = {"prog",
                        "--workers=3",
                        "--park-backstop-us=500",
                        "--progress-budget-us=4000",
                        "--watchdog=0",
                        "--max-inflight-loops=2",
                        "--chaos=claim_fail=0.1"};
  const cli c(7, argv);
  const rt::runtime_options o = rt::runtime_options::from_cli(c);
  EXPECT_EQ(o.num_workers, 3u);
  EXPECT_EQ(o.park_backstop, 500us);
  EXPECT_EQ(o.progress_budget, 4000us);
  EXPECT_FALSE(o.watchdog);
  EXPECT_EQ(o.max_inflight_loops, 2u);
  EXPECT_EQ(o.chaos, "claim_fail=0.1");
}

TEST(RuntimeOptions, FromCliRejectsOutOfRangeFlags) {
  const char* argv[] = {"prog", "--park-backstop-us=0"};
  const cli c(2, argv);
  EXPECT_THROW(rt::runtime_options::from_cli(c), std::invalid_argument);
}

TEST(RuntimeOptions, RuntimeUsesTheConfiguredBackstopAsWatchdogDefault) {
  rt::runtime_options o;
  o.num_workers = 1;
  o.park_backstop = 300us;
  rt::runtime rt(o);
  ASSERT_NE(rt.watchdog(), nullptr);
  EXPECT_EQ(rt.watchdog()->progress_budget(), 16 * 300us);
}

// ------------------------------------------------------------ watchdog

TEST(Watchdog, DisabledByOptionMeansNoServiceThread) {
  rt::runtime_options o;
  o.num_workers = 1;
  o.watchdog = false;
  rt::runtime rt(o);
  EXPECT_EQ(rt.watchdog(), nullptr);
}

TEST(Watchdog, ServiceThreadScansButNeverFlagsAnIdleRuntime) {
  rt::runtime_options o;
  o.num_workers = 2;
  o.progress_budget = 500us;
  rt::runtime rt(o);
  ASSERT_NE(rt.watchdog(), nullptr);
  std::this_thread::sleep_for(50ms);
  // Scans happen on the budget/2 cadence...
  EXPECT_GT(rt.watchdog()->scans(), 0u);
  // ...but with no loop open, the silent user thread (worker 0) and the
  // parked worker must not be classified stalled.
  EXPECT_EQ(rt.tel().totals().stalls_detected, 0u);
  EXPECT_NE(rt.watchdog()->health_of(0), rt::worker_health::stalled);
}

// Deterministic classification: one worker (this thread), manual scans.
TEST(Watchdog, ManualScanClassifiesStallArmsRescueAndRecovers) {
  rt::runtime_options o;
  o.num_workers = 1;
  o.watchdog = false;  // single-writer rule: only the manual scanner below
  rt::runtime rt(o);

  rt::health_watchdog::options wopt;
  wopt.progress_budget = 100us;
  wopt.start_thread = false;
  rt::health_watchdog wd(rt, wopt);

  // Silence with no loop open: never a stall (worker 0 belongs to the
  // user between loops).
  std::this_thread::sleep_for(1ms);
  EXPECT_EQ(wd.scan(), 0u);
  EXPECT_NE(wd.health_of(0), rt::worker_health::stalled);
  EXPECT_EQ(rt.tel().totals().stalls_detected, 0u);

  // Open a hybrid loop whose straggler (worker 0 == this thread) claimed
  // its designated partition 0 and then went silent: the classic stalled
  // earmark. Partitions 1..3 are the stranded remainder of its subtree.
  std::atomic<int> executed{0};
  // Named body: loop_ctx stores a non-owning function_ref, so the callable
  // must outlive the record (parallel_for normally guarantees this).
  const auto body = [&](std::int64_t lo, std::int64_t hi) {
    executed.fetch_add(static_cast<int>(hi - lo), std::memory_order_relaxed);
  };
  auto ctx = std::make_shared<sched::loop_ctx>(0, 64, body, /*grain=*/16,
                                               /*trace=*/nullptr);
  auto rec = std::make_shared<sched::hybrid_record>(ctx, 4);
  ASSERT_TRUE(rec->partitions().try_claim(0));
  const int slot = rt.loop_board().post(rec, 0);
  ASSERT_GE(slot, 0);

  std::this_thread::sleep_for(1ms);  // silence >= budget, loop now open
  EXPECT_EQ(wd.scan(), 1u);
  EXPECT_EQ(wd.health_of(0), rt::worker_health::stalled);
  EXPECT_TRUE(rec->rescue_armed());
  EXPECT_EQ(rt.tel().totals().stalls_detected, 1u);

  // A repeated scan while still stalled re-sends the rescue but does not
  // double-count the detection.
  std::this_thread::sleep_for(1ms);
  EXPECT_EQ(wd.scan(), 1u);
  EXPECT_EQ(rt.tel().totals().stalls_detected, 1u);

  // A helper arriving at the armed record sweeps the stranded earmarks:
  // partitions 1..3 execute exactly once here even though the designated
  // branch would normally trust the (stalled) claimant to cover them.
  EXPECT_TRUE(rec->participate(rt.worker_at(0)));
  EXPECT_TRUE(rec->partitions().all_claimed());
  EXPECT_EQ(executed.load(), 48);  // partitions 1..3, 16 iterations each
  EXPECT_EQ(rt.tel().totals().earmarks_rescued, 3u);

  // Executing those chunks beat the heartbeat, so the next scan recovers.
  EXPECT_EQ(wd.scan(), 0u);
  EXPECT_EQ(wd.health_of(0), rt::worker_health::healthy);

  rt.loop_board().clear(slot);
}

}  // namespace
}  // namespace hls

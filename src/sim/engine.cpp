#include "sim/engine.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "core/claim.h"
#include "core/weighted_split.h"
#include "trace/affinity.h"
#include "util/rng.h"

namespace hls::sim {
namespace {

struct irange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::int64_t size() const noexcept { return hi - lo; }
};

// Simulates ONE parallel loop instance. Workers are state machines driven
// by a (time, worker) min-heap; the policy decides each worker's next busy
// interval. The locality model persists across instances (owned by the
// caller), which is where affinity pays off.
class loop_sim {
 public:
  loop_sim(const machine_desc& m, const loop_spec& ls, policy pol,
           locality_model& loc, xoshiro256ss& rng, sim_result& out,
           const sim_options& opt, std::uint32_t flat_loop_index,
           double post_time, std::vector<std::uint32_t>* owners)
      : m_(m), ls_(ls), pol_(pol), loc_(loc), rng_(rng), out_(out), opt_(opt),
        flat_index_(flat_loop_index), post_(post_time), owners_(owners),
        n_(ls.n), p_(m.workers == 0 ? 1 : m.workers) {
    if (out_.busy_ns_per_worker.size() < p_) {
      out_.busy_ns_per_worker.resize(p_, 0.0);
    }
    grain_ = ls.grain > 0 ? ls.grain : default_grain(n_, p_);
    chunk_ = ls.chunk > 0 ? ls.chunk : default_grain(n_, p_);
    min_chunk_ = ls.min_chunk > 0 ? ls.min_chunk : 1;
    const std::uint32_t parts = ls.partitions > 0 ? ls.partitions : p_;
    r_count_ = next_pow2(parts);
    claimed_.assign(r_count_, 0);
    if (pol == policy::hybrid && ls.iteration_weight) {
      weighted_bounds_ =
          core::weighted_boundaries(0, n_, r_count_, ls.iteration_weight);
    }
    taken_.assign(p_, 0);
    ws_.resize(p_);
  }

  double run() {
    finish_ = post_ + m_.loop_post;
    for (std::uint32_t w = 0; w < p_; ++w) {
      const double discovery =
          w == 0 ? 0.0 : m_.discovery * (0.5 + rng_.next_double());
      double straggle = 0.0;
      if (w != 0 && opt_.straggler_fraction > 0.0 &&
          rng_.next_double() < opt_.straggler_fraction) {
        straggle =
            opt_.straggler_delay_ns * (0.5 + 0.5 * rng_.next_double());
      }
      auto& s = ws_[w];
      s.entry_floor = post_ + m_.loop_post + straggle;
      s.entry_t = s.entry_floor + discovery;
      // Parked-since-post baseline for the wake_to_first stat: latency is
      // measured from the instant the worker was both free and work
      // existed, so straggle is excluded in both the push and pull modes.
      s.idle_since = s.entry_floor;
      schedule(w, s.entry_t);
    }
    while (!heap_.empty()) {
      const auto [t, w] = heap_.top();
      heap_.pop();
      if (ws_[w].md != wmode::done) step(w, t);
    }
    return finish_;
  }

 private:
  enum class wmode { entering, claiming, thief, queue, done };

  struct wstate {
    wmode md = wmode::entering;
    std::deque<irange> dq;  // back = bottom (owner side), front = top
    std::uint64_t claim_i = 0;
    double idle_backoff = 0;
    // Push-based handoff (sim_options::push_handoff): the mailbox a donor
    // deposits a pre-split range into before the targeted wake, and the
    // time this worker ran dry (-1 = has work). idle_since_ also feeds the
    // wake_to_first_ns stat in the pull model, where the "wake" is the
    // backoff expiry that finally wins a steal.
    irange pending;
    bool has_pending = false;
    double idle_since = -1;
    // Entry model, for donate-on-open: entry_floor is the earliest this
    // worker could possibly start (loop post + any multiprogramming
    // straggle — a targeted wake cannot preempt another program), entry_t
    // the polled discovery it would otherwise ride out. A donation
    // reschedules the entry to now + handoff_cost, skipping the residual
    // discovery wait and the arrival probe walk.
    double entry_floor = 0;
    double entry_t = 0;
  };

  void schedule(std::uint32_t w, double t) { heap_.push({t, w}); }

  irange split_range(std::int64_t lo, std::int64_t total,
                     std::uint64_t pieces, std::uint64_t k) const {
    // Balanced k-th piece of [lo, lo+total) in `pieces` pieces.
    const std::int64_t base = total / static_cast<std::int64_t>(pieces);
    const std::int64_t rem = total % static_cast<std::int64_t>(pieces);
    const std::int64_t ki = static_cast<std::int64_t>(k);
    const std::int64_t extra = std::min<std::int64_t>(ki, rem);
    const std::int64_t b = lo + ki * base + extra;
    return {b, b + base + (ki < rem ? 1 : 0)};
  }

  irange part_range(std::uint64_t r) const {
    if (!weighted_bounds_.empty()) {
      return {weighted_bounds_[r], weighted_bounds_[r + 1]};
    }
    return split_range(0, n_, r_count_, r);
  }
  irange block_range(std::uint32_t w) const {
    return split_range(0, n_, p_, w);
  }

  double exec_cost(std::uint32_t core, irange rg) {
    double ns = 0;
    for (std::int64_t i = rg.lo; i < rg.hi; ++i) {
      ns += ls_.cpu(i) + loc_.access_ns(ls_, i, core);
      if (owners_ != nullptr) (*owners_)[i] = core;
    }
    return ns;
  }

  // Executes rg's leftmost grain-sized chunk after d&c splitting (upper
  // halves go to the worker's deque for thieves); schedules the completion
  // event.
  void run_range(std::uint32_t w, irange rg, double t, double lead) {
    bool donated = false;
    while (rg.size() > grain_) {
      const std::int64_t mid = rg.lo + rg.size() / 2;
      const irange upper{mid, rg.hi};
      rg.hi = mid;
      // Donate-on-open: the FIRST (largest) upper half goes straight to
      // the longest-idle peer's mailbox with a targeted wake, exactly once
      // per opened range — the threaded donor's one pre-split per span.
      // The donor pays handoff_cost in its lead; the peer is rescheduled
      // at the wake instant and dispatches with zero probes.
      if (opt_.push_handoff && !donated) {
        const std::uint32_t tgt = pick_idle(w, t + lead);
        if (tgt < p_) {
          auto& ts = ws_[tgt];
          ts.pending = upper;
          ts.has_pending = true;
          lead += m_.handoff_cost;
          out_.handoff_ns += m_.handoff_cost;
          ++out_.handoffs;
          schedule(tgt, t + lead);
          donated = true;
          continue;
        }
      }
      ws_[w].dq.push_back(upper);
    }
    out_.dispatch_ns += m_.chunk_dispatch;
    run_chunk(w, rg, t, lead + m_.chunk_dispatch);
  }

  // DES analogue of parking_lot_core::pick_waiter: a peer that would take
  // the longest to find this work on its own. Two kinds qualify — a worker
  // idling in steal backoff (longest-idle preferred), and one still riding
  // its polled discovery of the loop (latest discovery preferred, but only
  // once its multiprogramming floor has passed: a wake cannot preempt the
  // other program, and must actually beat the poll it replaces). Returns
  // p_ when every peer is busy.
  std::uint32_t pick_idle(std::uint32_t w, double t) const {
    std::uint32_t best = p_;
    double best_key = 0;
    for (std::uint32_t v = 0; v < p_; ++v) {
      const auto& s = ws_[v];
      if (v == w || s.has_pending) continue;
      double key;
      if (s.md == wmode::entering) {
        // Beyond the residual discovery wait, the carried payload also
        // saves the arrival probe walk — worth it even when the poll was
        // about to land.
        if (s.entry_floor > t) continue;
        key = s.entry_t - t;
      } else if (s.md != wmode::done && s.idle_since >= 0 && s.dq.empty()) {
        key = t - s.idle_since;  // time already wasted in backoff
      } else {
        continue;
      }
      if (best == p_ || key > best_key) {
        best = v;
        best_key = key;
      }
    }
    return best;
  }

  // Executes rg as one sequential chunk.
  void run_chunk(std::uint32_t w, irange rg, double t, double lead) {
    const double start = t + lead;
    if (ws_[w].idle_since >= 0) {
      out_.wake_to_first_ns += start - ws_[w].idle_since;
      ++out_.wakes;
      ws_[w].idle_since = -1;
    }
    const double dur = exec_cost(w, rg);
    out_.work_ns += dur;
    out_.busy_ns_per_worker[w] += lead + dur;
    ++out_.chunks;
    if (opt_.record_schedule) {
      out_.schedule.push_back({rg.lo, rg.hi, w, flat_index_, start});
    }
    done_iters_ += rg.size();
    const double end = start + dur;
    if (end > finish_) finish_ = end;
    ws_[w].idle_backoff = 0;
    schedule(w, end);
  }

  bool try_local(std::uint32_t w, double t) {
    auto& dq = ws_[w].dq;
    if (dq.empty()) return false;
    const irange rg = dq.back();
    dq.pop_back();
    run_range(w, rg, t, 0.0);
    return true;
  }

  bool try_steal(std::uint32_t w, double t) {
    // Victims with exposed work.
    std::uint32_t candidates = 0;
    for (std::uint32_t v = 0; v < p_; ++v) {
      if (v != w && !ws_[v].dq.empty()) ++candidates;
    }
    if (candidates == 0) return false;
    // Random probing: expected P/candidates probes to hit a non-empty deque.
    const std::uint64_t probes =
        std::max<std::uint64_t>(1, p_ / candidates) + rng_.next_below(2);
    // Pick the victim uniformly among candidates.
    std::uint32_t pick = static_cast<std::uint32_t>(rng_.next_below(candidates));
    std::uint32_t victim = 0;
    for (std::uint32_t v = 0; v < p_; ++v) {
      if (v != w && !ws_[v].dq.empty()) {
        if (pick == 0) {
          victim = v;
          break;
        }
        --pick;
      }
    }
    const irange rg = ws_[victim].dq.front();  // top = largest, oldest
    ws_[victim].dq.pop_front();
    ++out_.steals;
    out_.steal_probes += probes;
    const double steal_cost =
        static_cast<double>(probes) * m_.steal_attempt + m_.steal_success;
    out_.steal_ns += steal_cost;
    run_range(w, rg, t, steal_cost);
    return true;
  }

  // Returns true if a claim produced work (event scheduled). On exit from
  // the claim loop, switches the worker to thief mode and charges the
  // accumulated claim time.
  bool try_claim(std::uint32_t w, double t) {
    auto& s = ws_[w];
    const std::uint32_t weff =
        w & static_cast<std::uint32_t>(r_count_ - 1);
    double lead = 0;
    while (s.claim_i < r_count_) {
      lead += m_.claim_cost;
      const std::uint64_t r = core::claim_target(s.claim_i, weff);
      if (claimed_[r] == 0) {
        claimed_[r] = 1;
        ++out_.successful_claims;
        s.claim_i += 1;
        const irange rg = part_range(r);
        if (rg.size() == 0) continue;  // empty partition: claimed, move on
        out_.claim_ns += lead;
        run_range(w, rg, t, lead);
        return true;
      }
      ++out_.failed_claims;
      if (s.claim_i == 0) break;  // designated partition taken: leave loop
      s.claim_i = core::advance_on_failure(s.claim_i);
    }
    // Claim loop exhausted: revert to ordinary randomized work stealing.
    s.md = wmode::thief;
    out_.claim_ns += lead;
    if (lead > 0) {
      schedule(w, t + lead);
      return true;  // the time was consumed; next event continues as thief
    }
    return false;
  }

  bool try_queue(std::uint32_t w, double t) {
    if (qnext_ >= n_) return false;
    ++out_.queue_accesses;
    const double t_acc = std::max(t, queue_free_) + m_.queue_cs;
    queue_free_ = t_acc;
    std::int64_t size;
    if (pol_ == policy::guided) {
      size = std::max(min_chunk_,
                      (n_ - qnext_) / (2 * static_cast<std::int64_t>(p_)));
    } else {
      size = chunk_;
    }
    const irange rg{qnext_, std::min(n_, qnext_ + size)};
    qnext_ = rg.hi;
    out_.queue_ns += t_acc - t;
    run_chunk(w, rg, t, t_acc - t);  // queue wait + critical section as lead
    return true;
  }

  void step(std::uint32_t w, double t) {
    auto& s = ws_[w];
    if (s.md == wmode::entering) {
      switch (pol_) {
        case policy::static_part: {
          if (w < p_ && taken_[w] == 0) {
            taken_[w] = 1;
            const irange rg = block_range(w);
            if (rg.size() > 0) {
              out_.dispatch_ns += m_.chunk_dispatch;
              run_chunk(w, rg, t, m_.chunk_dispatch);
            }
          }
          s.md = wmode::done;  // strict static: one block, then leave
          return;
        }
        case policy::dynamic_shared:
        case policy::guided:
          s.md = wmode::queue;
          break;
        case policy::dynamic_ws:
          if (w == 0) s.dq.push_back({0, n_});
          s.md = wmode::thief;
          break;
        case policy::hybrid: {
          const std::uint32_t weff =
              w & static_cast<std::uint32_t>(r_count_ - 1);
          // DoHybridLoop steal protocol: enter via the claim loop iff the
          // designated partition is still unclaimed.
          s.md = claimed_[core::claim_target(0, weff)] == 0 ? wmode::claiming
                                                            : wmode::thief;
          s.claim_i = 0;
          break;
        }
        case policy::serial:
          s.md = wmode::done;
          return;
      }
    }

    switch (s.md) {
      case wmode::queue:
        if (!try_queue(w, t)) s.md = wmode::done;
        return;

      case wmode::claiming:
        // Finish the local share of the claimed partition first
        // (drain_local), then claim the next partition.
        if (try_local(w, t)) return;
        if (try_claim(w, t)) return;
        [[fallthrough]];

      case wmode::thief: {
        // A deposited handoff is consumed before any probe — the woken
        // worker's mailbox-first rule (rt::worker::try_consume_handoff).
        if (s.has_pending) {
          s.has_pending = false;
          run_range(w, s.pending, t, 0.0);
          return;
        }
        if (try_local(w, t)) return;
        if (try_steal(w, t)) return;
        if (done_iters_ >= n_) {
          s.md = wmode::done;
          return;
        }
        // Nothing stealable yet: exponential backoff retry.
        if (s.idle_since < 0) s.idle_since = t;
        s.idle_backoff = std::min(
            10000.0, std::max(2.0 * m_.steal_attempt, s.idle_backoff * 2.0));
        schedule(w, t + s.idle_backoff);
        return;
      }

      case wmode::entering:
      case wmode::done:
        return;
    }
  }

  const machine_desc& m_;
  const loop_spec& ls_;
  const policy pol_;
  locality_model& loc_;
  xoshiro256ss& rng_;
  sim_result& out_;
  const sim_options& opt_;
  const std::uint32_t flat_index_;
  const double post_;
  std::vector<std::uint32_t>* owners_;

  const std::int64_t n_;
  const std::uint32_t p_;
  std::int64_t grain_ = 1;
  std::int64_t chunk_ = 1;
  std::int64_t min_chunk_ = 1;
  std::uint64_t r_count_ = 1;

  std::vector<wstate> ws_;
  std::vector<std::int64_t> weighted_bounds_;
  std::vector<char> claimed_;
  std::vector<char> taken_;
  std::int64_t qnext_ = 0;
  double queue_free_ = 0;
  std::int64_t done_iters_ = 0;
  double finish_ = 0;

  using ev = std::pair<double, std::uint32_t>;
  std::priority_queue<ev, std::vector<ev>, std::greater<>> heap_;
};

}  // namespace

sim_result simulate(const machine_desc& m, const workload_spec& w, policy pol,
                    const sim_options& opt) {
  sim_result out;
  if (pol == policy::serial) {
    out.makespan_ns = simulate_serial(m, w);
    out.work_ns = out.makespan_ns;
    return out;
  }

  xoshiro256ss rng(opt.seed);
  locality_model loc(m, w, m.workers);

  const bool want_owners = opt.record_owners || w.outer_iterations > 1;
  std::vector<trace::affinity_meter> meters(w.loops.size());

  double t = 0;
  std::uint32_t flat = 0;
  for (int outer = 0; outer < w.outer_iterations; ++outer) {
    for (std::size_t li = 0; li < w.loops.size(); ++li) {
      const loop_spec& ls = w.loops[li];
      std::vector<std::uint32_t> owners;
      if (want_owners) {
        owners.assign(static_cast<std::size_t>(ls.n), 0);
      }
      loop_sim sim(m, ls, pol, loc, rng, out, opt, flat, t,
                   want_owners ? &owners : nullptr);
      t = sim.run();
      t += m.seq_section_ns;
      if (want_owners) {
        meters[li].observe(owners);
        if (opt.record_owners) out.owners_per_loop.push_back(std::move(owners));
      }
      ++flat;
    }
  }
  out.makespan_ns = t - m.seq_section_ns;  // no trailing serial section
  out.mem = loc.counts();
  if (out.makespan_ns > 0 && !out.busy_ns_per_worker.empty()) {
    double busy = 0;
    for (double b : out.busy_ns_per_worker) busy += b;
    out.utilization = busy / (out.makespan_ns *
                              static_cast<double>(out.busy_ns_per_worker.size()));
  }

  double aff_sum = 0;
  std::size_t aff_n = 0;
  for (const auto& meter : meters) {
    if (meter.pairs() > 0) {
      aff_sum += meter.average();
      ++aff_n;
    }
  }
  out.affinity = aff_n == 0 ? 0.0 : aff_sum / static_cast<double>(aff_n);
  return out;
}

double simulate_serial(const machine_desc& m, const workload_spec& w) {
  locality_model loc(m, w, 1);
  double t = 0;
  for (int outer = 0; outer < w.outer_iterations; ++outer) {
    for (const loop_spec& ls : w.loops) {
      for (std::int64_t i = 0; i < ls.n; ++i) {
        t += ls.cpu(i) + loc.access_ns(ls, i, 0);
      }
      t += m.seq_section_ns;
    }
  }
  return t - m.seq_section_ns;
}

}  // namespace hls::sim

// Ablation A5: the partition count R (paper Theorem 5).
//
// The general bound is
//   T_P <= (sum T1(j) + Theta(R + n/R) + O(R lg R))/P + O(R + lg n + span),
// so R trades sequential-chunk overhead (n/R term shrinks with R) against
// claim and span overheads (R and R lg R terms grow with R). The paper runs
// with R = P (Corollary 6). This bench sweeps R from P/4 to 32P on both
// microbenchmarks at 32 simulated cores, showing the flat valley around
// R = P for balanced loops and the mild benefit of extra partitions for
// unbalanced ones (finer earmarked units, less stealing) — until claim
// overhead takes over.
#include <iostream>

#include "bench_util.h"
#include "sim/engine.h"
#include "workloads/micro.h"

int main(int argc, char** argv) {
  using namespace hls;
  const cli c(argc, argv);
  bench::init_output(c);
  const auto m = bench::paper_machine().with_workers(
      static_cast<std::uint32_t>(c.get_int_in("workers", 32, 1, rt::runtime::kMaxWorkers)));

  bench::print_header(
      "A5 partition-count sweep (hybrid, 32 cores, virtual ms)");
  table t({"R", "balanced T32", "bal affinity", "unbalanced T32",
           "unb affinity", "failed claims (unb)"});

  for (std::uint32_t parts : {8u, 16u, 32u, 64u, 128u, 256u, 1024u}) {
    std::vector<std::string> row{std::to_string(parts)};
    std::uint64_t unb_fails = 0;
    for (bool balanced : {true, false}) {
      workloads::micro_params mp;
      mp.iterations = c.get_int("iterations", 2048);
      mp.total_bytes = workloads::kWsUnderL3;
      mp.balanced = balanced;
      mp.outer_iterations = 6;
      auto w = workloads::micro_spec(mp);
      w.loops[0].partitions = parts;
      const auto r = sim::simulate(m, w, policy::hybrid);
      row.push_back(table::fmt(r.makespan_ns / 1e6, 3));
      row.push_back(table::fmt_pct(r.affinity, 1));
      if (!balanced) unb_fails = r.failed_claims;
    }
    row.push_back(std::to_string(unb_fails));
    t.add_row(std::move(row));
  }
  hls::bench::emit(t);
  hls::bench::note(
      "\nR = P (=32) sits in the valley for balanced loops; extra "
      "partitions help\nunbalanced loops a little (finer earmarked "
      "units) until the O(R lg R)\nclaim traffic dominates.\n");
  return 0;
}

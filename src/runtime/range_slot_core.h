// Splittable-range slot: lazy steal-driven loop splitting — the protocol
// core, as a header template.
//
// A worker executing a loop span publishes it here instead of eagerly
// heap-allocating ~lg(n/grain) divide-and-conquer subtasks. The slot packs
// the stealable region into one 64-bit word — {split:32 | hi:32}, both
// offsets from an owner-written base — so the owner reserves work for
// itself and a thief steals the upper half [mid, hi) with a single CAS.
// Nothing is allocated and no shared_ptr refcount is touched unless a
// steal actually happens; a stolen range seeds the thief's own slot, so
// splitting stays recursive and the divide-and-conquer span bound
// (Corollary 6) is preserved.
//
// Protocol (full ordering table in docs/runtime.md):
//
//   owner   open():    plain field writes, then word.store(open, release)
//           reserve(): CAS {split, hi} -> {split', hi} claiming
//                      [split, split') for itself (amortized: one RMW per
//                      ~1/8 of the remaining range, not per chunk)
//           close():   word.exchange(kClosed, seq_cst), then spin until
//                      readers == 0 (drain)
//   thief   try_steal(): readers.fetch_add(seq_cst); re-read word
//                      (seq_cst); CAS {split, hi} -> {split, mid};
//                      readers.fetch_sub(release)
//
// Lifetime safety mirrors the board's reader-count drain: a thief touches
// the plain fields (ctx/runner/base/grain) only between the reader
// announce and retreat while the word was observed open; close() waits
// out every such reader before the owner may rewrite the fields for the
// next span. ABA is structurally impossible: within one open the word is
// strictly monotonic (split only rises, hi only falls), and a reopened
// slot cannot be reached by a stale CAS because the drain waited for
// every thief holding a pre-close word value.
//
// Template parameters:
//   Traits — synchronization traits (verify/sync.h); the plain fields use
//            Traits::var so the model-checking harness race-checks every
//            access the drain protocol is supposed to order.
//   Runner — the type stored in the runner field; opaque to the protocol
//            (the shipping wrapper uses its worker-thunk function pointer,
//            the verification models use their own callables).
//   Policy — protocol-variant knobs; shipping code always uses
//            range_slot_policy_default (see verify_test.cpp for why the
//            broken variant exists).
#pragma once

#include <algorithm>
#include <atomic>  // std::memory_order (the traits' atomics share its enum)
#include <cassert>
#include <cstdint>

#include "util/cacheline.h"

namespace hls::rt {

// close_drain: close() unpublishes with a seq_cst exchange and waits out
// in-flight readers. Disabling it downgrades close() to a plain relaxed
// store with no drain — reintroducing the use-after-reopen race the drain
// exists to prevent; the verification suite proves the harness flags it
// (a vector-clock data race on the span fields).
struct range_slot_policy_default {
  static constexpr bool close_drain = true;
};

struct range_slot_policy_no_drain {
  static constexpr bool close_drain = false;
};

template <typename Traits, typename Runner,
          typename Policy = range_slot_policy_default>
class range_slot_core {
  template <typename U>
  using atomic_t = typename Traits::template atomic<U>;
  template <typename U>
  using var_t = typename Traits::template var<U>;

 public:
  using runner_type = Runner;

  // Result of a successful steal; evaluates to false on a failed probe.
  struct stolen {
    Runner run{};
    void* ctx = nullptr;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    explicit operator bool() const noexcept { return run != Runner{}; }
  };

  // Largest publishable span: both offsets must fit 32 bits (and stay
  // distinguishable from kClosed). Callers eagerly bisect larger spans.
  static constexpr std::int64_t kMaxSpan = std::int64_t{1} << 31;

  range_slot_core() = default;
  range_slot_core(const range_slot_core&) = delete;
  range_slot_core& operator=(const range_slot_core&) = delete;

  // -- owner side (the worker that owns this slot) ----------------------

  // Publishes [lo, hi) as a splittable span. Returns false when the slot
  // is already open (a nested loop inside a chunk body); the caller falls
  // back to eager subtask splitting. Requires 0 < hi - lo <= kMaxSpan.
  bool open(void* ctx, Runner runner, std::int64_t lo, std::int64_t hi,
            std::int64_t grain) noexcept {
    if (owner_open_.load()) return false;
    assert(hi > lo && hi - lo <= kMaxSpan);
    ctx_.store(ctx);
    runner_.store(runner);
    base_.store(lo);
    grain_.store(grain < 1 ? 1 : grain);
    init_hi_off_.store(static_cast<std::uint64_t>(hi - lo));
    owner_open_.store(true);
    // The release store publishes the fields above to any thief whose
    // (seq_cst) word load observes the open value.
    word_.store(pack(0, init_hi_off_.load()), std::memory_order_release);
    return true;
  }

  // Reserves the owner's next batch: claims [cur, result) where `cur` is
  // the owner's current position (== the published split). Returns `cur`
  // itself when thieves have consumed everything above it. The batch is
  // max(grain, remaining/8), so the owner pays one RMW per refill, not
  // per chunk, while keeping 7/8 of the remainder stealable.
  std::int64_t reserve(std::int64_t cur) noexcept {
    const std::uint64_t off = static_cast<std::uint64_t>(cur - base_.load());
    std::uint64_t w = word_.load(std::memory_order_relaxed);
    for (;;) {
      // Only the owner raises split, so the published split always equals
      // the owner's own position; thieves may only have lowered hi.
      assert((w >> 32) == off);
      const std::uint64_t hi = w & kOffMask;
      if (off >= hi) return cur;  // thieves consumed the rest
      const std::uint64_t remaining = hi - off;
      const std::uint64_t g = static_cast<std::uint64_t>(grain_.load());
      const std::uint64_t take =
          remaining <= g ? remaining : std::max(g, remaining >> 3);
      if (word_.compare_exchange_weak(w, pack(off + take, hi),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return base_.load() + static_cast<std::int64_t>(off + take);
      }
    }
  }

  // Unpublishes the span and waits out in-flight thief probes so the
  // fields may be safely rewritten by the next open(). Returns true when
  // at least one steal shrank the span (i.e. the span was split).
  bool close() noexcept {
    std::uint64_t last;
    if constexpr (Policy::close_drain) {
      // The seq_cst exchange is one side of a Dekker handshake with
      // try_steal(): a thief either announced itself before this store
      // (the drain below waits it out) or its word re-read sees kClosed
      // and bails.
      last = word_.exchange(kClosed, std::memory_order_seq_cst);
    } else {
      last = word_.load(std::memory_order_relaxed);
      word_.store(kClosed, std::memory_order_relaxed);
    }
    owner_open_.store(false);
    if constexpr (Policy::close_drain) {
      // Drain: after this loop no thief can still be reading the span
      // fields (its release fetch_sub happens-before our
      // acquire-or-stronger load), so the next open() may rewrite them
      // without a race. A stale pre-close word value also cannot be CASed
      // over a reopened slot, because every thief holding one retreated
      // here first.
      while (readers_.load(std::memory_order_seq_cst) != 0) Traits::pause();
    }
    return (last & kOffMask) != init_hi_off_.load();
  }

  // Owner-thread-only: is this slot currently publishing a span?
  bool owner_open() const noexcept { return owner_open_.load(); }

  // -- thief side -------------------------------------------------------

  // Cheap pre-check (one relaxed load, no RMW) for the steal path's
  // common miss case.
  bool looks_open() const noexcept {
    return word_.load(std::memory_order_relaxed) != kClosed;
  }

  // One steal attempt: claims the upper half of the stealable region when
  // it holds at least two grains (both halves stay >= grain). Like
  // ws_deque::steal, a lost CAS race reports failure rather than retrying.
  stolen try_steal() noexcept {
    stolen out;
    // Announce before re-reading the word (the other side of close()'s
    // Dekker handshake); the plain field reads below are only legal
    // between this increment and the decrement while the word was
    // observed open.
    readers_.fetch_add(1, std::memory_order_seq_cst);
    std::uint64_t w = word_.load(std::memory_order_seq_cst);
    if (w != kClosed) {
      const std::uint64_t split = w >> 32;
      const std::uint64_t hi = w & kOffMask;
      const auto g = static_cast<std::uint64_t>(grain_.load());
      // Steal only when both halves stay >= grain; smaller remainders are
      // the owner's tail and not worth a migration.
      if (hi - split >= 2 * g) {
        const std::uint64_t mid = split + (hi - split) / 2;
        if (word_.compare_exchange_strong(w, pack(split, mid),
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
          out.run = runner_.load();
          out.ctx = ctx_.load();
          out.lo = base_.load() + static_cast<std::int64_t>(mid);
          out.hi = base_.load() + static_cast<std::int64_t>(hi);
        }
      }
    }
    readers_.fetch_sub(1, std::memory_order_release);
    return out;
  }

 private:
  static constexpr std::uint64_t kOffMask = 0xffffffffull;
  // split == hi == 2^32 - 1 can never be a valid open state (offsets are
  // bounded by kMaxSpan), so all-ones doubles as the closed sentinel.
  static constexpr std::uint64_t kClosed = ~0ull;

  static constexpr std::uint64_t pack(std::uint64_t split,
                                      std::uint64_t hi) noexcept {
    return (split << 32) | hi;
  }

  // Owner-written span fields. Thieves read them only inside the reader
  // announce/retreat window after observing the word open; the close()
  // drain orders those reads before any rewrite (see header comment).
  // Routed through Traits::var so the harness race-checks exactly the
  // accesses the drain protocol is supposed to order.
  var_t<void*> ctx_{};
  var_t<Runner> runner_{};
  var_t<std::int64_t> base_{};
  var_t<std::int64_t> grain_{1};
  var_t<std::uint64_t> init_hi_off_{};  // owner-only: split detect at close
  var_t<bool> owner_open_{};            // owner-only: nested-span guard

  // The packed {split:32 | hi:32} word (offsets from base_), CASed by the
  // owner (reserve) and thieves (steal); kClosed when no span is open.
  alignas(kCacheLine) atomic_t<std::uint64_t> word_{kClosed};

  // In-flight thief probes (the board-style drain counter).
  alignas(kCacheLine) atomic_t<std::uint32_t> readers_{0};
};

}  // namespace hls::rt

// Scalability sweeps: the quantities plotted in the paper's Figs. 1 and 3.
//
// For each policy the paper reports work efficiency Ts/T1 (one column) and
// scalability T1/TP across worker counts. Ts is the serial elision; T1 is
// the one-worker run under the policy (including scheduling overhead).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sched/policy.h"
#include "sim/engine.h"

namespace hls::sim {

struct sweep_point {
  std::uint32_t p = 0;
  double tp_ns = 0;
  double scalability = 0;  // T1 / TP  (Fig. 1's y-axis)
  double speedup = 0;      // Ts / TP  (Fig. 3's y-axis)
  double affinity = 0;     // Fig. 2 metric at this P
  std::uint64_t steals = 0;
  std::uint64_t failed_claims = 0;
};

struct sweep_result {
  policy pol{};
  double ts_ns = 0;
  double t1_ns = 0;
  double work_efficiency = 0;  // Ts / T1
  std::vector<sweep_point> points;
};

sweep_result sweep_workers(const machine_desc& base, const workload_spec& w,
                           policy pol, std::span<const std::uint32_t> workers,
                           std::uint64_t seed = 12345);

}  // namespace hls::sim

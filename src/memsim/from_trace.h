// Bridge from real threaded-runtime loop traces to the memory simulator.
//
// The discrete-event simulator records chunk schedules natively; this
// adapter lets REAL runs do the same: record loop_trace instances with
// loop_options::trace, convert them here, and replay through the line-level
// hierarchy. Chunk ordering uses each trace's global execution sequence, so
// cross-loop interleaving is preserved per loop and loops follow each other
// in program order (the outer iterative structure).
#pragma once

#include <vector>

#include "sim/engine.h"
#include "trace/loop_trace.h"

namespace hls::memsim {

// Converts a sequence of per-loop traces (one per executed parallel loop,
// in program order) to the chunk-event form replay_schedule consumes.
// loop_in_sequence is the trace's index; start_ns is a synthetic ordering
// key (loop index major, trace sequence minor).
std::vector<sim::chunk_event> chunks_from_traces(
    const std::vector<const trace::loop_trace*>& traces);

}  // namespace hls::memsim

// Splittable-range slot: lazy steal-driven loop splitting (one per worker).
//
// A worker executing a loop span publishes it here instead of eagerly
// heap-allocating ~lg(n/grain) divide-and-conquer subtasks. The slot packs
// the stealable region into one 64-bit word — {split:32 | hi:32}, both
// offsets from an owner-written base — so the owner reserves work for
// itself and a thief steals the upper half [mid, hi) with a single CAS.
// Nothing is allocated and no shared_ptr refcount is touched unless a
// steal actually happens; a stolen range seeds the thief's own slot, so
// splitting stays recursive and the divide-and-conquer span bound
// (Corollary 6) is preserved.
//
// Protocol (full ordering table in docs/runtime.md):
//
//   owner   open():    plain field writes, then word.store(open, release)
//           reserve(): CAS {split, hi} -> {split', hi} claiming
//                      [split, split') for itself (amortized: one RMW per
//                      ~1/8 of the remaining range, not per chunk)
//           close():   word.exchange(kClosed, seq_cst), then spin until
//                      readers == 0 (drain)
//   thief   try_steal(): readers.fetch_add(seq_cst); re-read word
//                      (seq_cst); CAS {split, hi} -> {split, mid};
//                      readers.fetch_sub(release)
//
// Lifetime safety mirrors the board's reader-count drain: a thief touches
// the plain fields (ctx/runner/base/grain) only between the reader
// announce and retreat while the word was observed open; close() waits
// out every such reader before the owner may rewrite the fields for the
// next span. ABA is structurally impossible: within one open the word is
// strictly monotonic (split only rises, hi only falls), and a reopened
// slot cannot be reached by a stale CAS because the drain waited for
// every thief holding a pre-close word value.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/cacheline.h"

namespace hls::rt {

class worker;

class range_slot {
 public:
  // Invoked on the thief to execute a stolen range. `ctx` is the opaque
  // pointer passed to open(); the scheduler layer supplies a thunk that
  // downcasts it (runtime/ cannot depend on sched/).
  using span_runner = void (*)(worker& thief, void* ctx, std::int64_t lo,
                               std::int64_t hi);

  // Result of a successful steal; evaluates to false on a failed probe.
  struct stolen {
    span_runner run = nullptr;
    void* ctx = nullptr;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    explicit operator bool() const noexcept { return run != nullptr; }
  };

  // Largest publishable span: both offsets must fit 32 bits (and stay
  // distinguishable from kClosed). Callers eagerly bisect larger spans.
  static constexpr std::int64_t kMaxSpan = std::int64_t{1} << 31;

  range_slot() = default;
  range_slot(const range_slot&) = delete;
  range_slot& operator=(const range_slot&) = delete;

  // -- owner side (the worker that owns this slot) ----------------------

  // Publishes [lo, hi) as a splittable span. Returns false when the slot
  // is already open (a nested loop inside a chunk body); the caller falls
  // back to eager subtask splitting. Requires 0 < hi - lo <= kMaxSpan.
  bool open(void* ctx, span_runner runner, std::int64_t lo, std::int64_t hi,
            std::int64_t grain) noexcept;

  // Reserves the owner's next batch: claims [cur, result) where `cur` is
  // the owner's current position (== the published split). Returns `cur`
  // itself when thieves have consumed everything above it. The batch is
  // max(grain, remaining/8), so the owner pays one RMW per refill, not
  // per chunk, while keeping 7/8 of the remainder stealable.
  std::int64_t reserve(std::int64_t cur) noexcept;

  // Unpublishes the span and waits out in-flight thief probes so the
  // fields may be safely rewritten by the next open(). Returns true when
  // at least one steal shrank the span (i.e. the span was split).
  bool close() noexcept;

  // Owner-thread-only: is this slot currently publishing a span?
  bool owner_open() const noexcept { return owner_open_; }

  // -- thief side -------------------------------------------------------

  // Cheap pre-check (one relaxed load, no RMW) for the steal path's
  // common miss case.
  bool looks_open() const noexcept {
    return word_.load(std::memory_order_relaxed) != kClosed;
  }

  // One steal attempt: claims the upper half of the stealable region when
  // it holds at least two grains (both halves stay >= grain). Like
  // ws_deque::steal, a lost CAS race reports failure rather than retrying.
  stolen try_steal() noexcept;

 private:
  static constexpr std::uint64_t kOffMask = 0xffffffffull;
  // split == hi == 2^32 - 1 can never be a valid open state (offsets are
  // bounded by kMaxSpan), so all-ones doubles as the closed sentinel.
  static constexpr std::uint64_t kClosed = ~0ull;

  static constexpr std::uint64_t pack(std::uint64_t split,
                                      std::uint64_t hi) noexcept {
    return (split << 32) | hi;
  }

  // Owner-written span fields. Thieves read them only inside the reader
  // announce/retreat window after observing the word open; the close()
  // drain orders those reads before any rewrite (see header comment).
  void* ctx_ = nullptr;
  span_runner runner_ = nullptr;
  std::int64_t base_ = 0;
  std::int64_t grain_ = 1;
  std::uint64_t init_hi_off_ = 0;  // owner-only: split detection at close
  bool owner_open_ = false;        // owner-only: nested-span guard

  // The packed {split:32 | hi:32} word (offsets from base_), CASed by the
  // owner (reserve) and thieves (steal); kClosed when no span is open.
  alignas(kCacheLine) std::atomic<std::uint64_t> word_{kClosed};

  // In-flight thief probes (the board-style drain counter).
  alignas(kCacheLine) std::atomic<std::uint32_t> readers_{0};
};

}  // namespace hls::rt

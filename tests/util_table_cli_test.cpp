#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.h"
#include "util/table.h"

namespace hls {
namespace {

TEST(Table, AlignedOutputContainsAllCells) {
  table t({"scheme", "P", "speedup"});
  t.add_row({"hybrid", "32", "27.4"});
  t.add_row({"vanilla", "32", "19.1"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("scheme"), std::string::npos);
  EXPECT_NE(s.find("hybrid"), std::string::npos);
  EXPECT_NE(s.find("27.4"), std::string::npos);
  EXPECT_NE(s.find("vanilla"), std::string::npos);
}

TEST(Table, CsvOutput) {
  table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, ShortRowsArePadded) {
  table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\nonly,,\n");
}

TEST(Table, Formatting) {
  EXPECT_EQ(table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(table::fmt_pct(0.9999, 2), "99.99%");
  EXPECT_EQ(table::fmt_pct(1.0, 2), "100.00%");
  const std::string sci = table::fmt_sci(118000000000.0, 2);
  EXPECT_NE(sci.find("1.18e+11"), std::string::npos) << sci;
}

TEST(Cli, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog", "--workers=8", "--verbose", "input.txt",
                        "--ratio=0.5"};
  cli c(5, argv);
  EXPECT_TRUE(c.has("workers"));
  EXPECT_EQ(c.get_int("workers", 1), 8);
  EXPECT_TRUE(c.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(c.get_double("ratio", 0.0), 0.5);
  ASSERT_EQ(c.positional().size(), 1u);
  EXPECT_EQ(c.positional()[0], "input.txt");
}

TEST(Cli, Defaults) {
  const char* argv[] = {"prog"};
  cli c(1, argv);
  EXPECT_FALSE(c.has("x"));
  EXPECT_EQ(c.get_int("x", 42), 42);
  EXPECT_EQ(c.get("name", "fallback"), "fallback");
  EXPECT_FALSE(c.get_bool("flag", false));
}

TEST(Cli, BoolFalseSpellings) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=yes"};
  cli c(4, argv);
  EXPECT_FALSE(c.get_bool("a", true));
  EXPECT_FALSE(c.get_bool("b", true));
  EXPECT_TRUE(c.get_bool("c", false));
}

TEST(Cli, IntList) {
  const char* argv[] = {"prog", "--workers=1,2,4,8,16,32"};
  cli c(2, argv);
  const auto xs = c.get_int_list("workers", {});
  ASSERT_EQ(xs.size(), 6u);
  EXPECT_EQ(xs.front(), 1);
  EXPECT_EQ(xs.back(), 32);
  const auto def = c.get_int_list("missing", {7});
  ASSERT_EQ(def.size(), 1u);
  EXPECT_EQ(def[0], 7);
}

}  // namespace
}  // namespace hls

#include "telemetry/profiler.h"

#include <algorithm>
#include <cstring>

namespace hls::telemetry {

const char* degrade_reason_name(degrade_reason r) noexcept {
  switch (r) {
    case degrade_reason::none: return "none";
    case degrade_reason::foreign_thread: return "foreign_thread";
    case degrade_reason::admission_gate: return "admission_gate";
  }
  return "?";
}

std::string loop_site::key() const {
  const char* f = file != nullptr ? file : "?";
  // Basename only: the full build-tree path adds noise and makes keys
  // differ between build machines.
  if (const char* slash = std::strrchr(f, '/')) f = slash + 1;
  std::string k = std::string(f) + ":" + std::to_string(line);
  if (name != nullptr && name[0] != '\0') {
    k += "#";
    k += name;
  }
  return k;
}

loop_profiler::loop_profiler() : loop_profiler(options{}) {}

loop_profiler::loop_profiler(options opt) : opt_(opt) {
  // A zero-capacity ring would make every record vanish silently; keep at
  // least one slot so "the last invocation" is always inspectable.
  const_cast<options&>(opt_).ring_capacity =
      std::max<std::size_t>(1, opt_.ring_capacity);
}

void loop_profiler::record(const std::string& site_key, int n_bucket,
                           invocation_record rec) {
  hls::scoped_lock<annotated_mutex> lk(mu_);
  rec.seq = seq_++;
  recorded_total_ += rec.delta;
  site_state& s = sites_[key{site_key, n_bucket}];
  ++s.invocations;
  s.total_wall_ns += rec.wall_ns;
  if (s.ring.size() < opt_.ring_capacity) {
    s.ring.push_back(std::move(rec));
  } else {
    // Bounded FIFO eviction: overwrite the oldest slot.
    s.ring[s.next] = std::move(rec);
    s.next = (s.next + 1) % opt_.ring_capacity;
  }
}

std::vector<loop_profiler::site_snapshot> loop_profiler::snapshot() const {
  hls::scoped_lock<annotated_mutex> lk(mu_);
  std::vector<site_snapshot> out;
  out.reserve(sites_.size());
  for (const auto& [k, s] : sites_) {
    site_snapshot snap;
    snap.site = k.first;
    snap.n_bucket = k.second;
    snap.invocations = s.invocations;
    snap.total_wall_ns = s.total_wall_ns;
    snap.records.reserve(s.ring.size());
    // Unroll the ring to oldest-first order: once full, `next` points at
    // the oldest entry.
    const std::size_t n = s.ring.size();
    const std::size_t start = n < opt_.ring_capacity ? 0 : s.next;
    for (std::size_t i = 0; i < n; ++i) {
      snap.records.push_back(s.ring[(start + i) % n]);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

counter_set loop_profiler::recorded_total() const {
  hls::scoped_lock<annotated_mutex> lk(mu_);
  return recorded_total_;
}

std::uint64_t loop_profiler::invocations() const {
  hls::scoped_lock<annotated_mutex> lk(mu_);
  return seq_;
}

// --------------------------------------------------------------- probe

invocation_probe::invocation_probe(registry& reg, loop_profiler* prof)
    : reg_(reg), prof_(prof) {
  if (prof_ == nullptr) return;
  t_entry_ = reg_.now();
  before_.reserve(reg_.num_workers());
  for (std::uint32_t w = 0; w < reg_.num_workers(); ++w) {
    before_.push_back(reg_.of_worker(w));
  }
}

void invocation_probe::setup_done() noexcept {
  if (prof_ != nullptr) t_setup_ = reg_.now();
}

void invocation_probe::work_done() noexcept {
  if (prof_ != nullptr) t_work_ = reg_.now();
}

void invocation_probe::commit(const loop_site* site, const char* label,
                              policy pol, std::uint32_t partitions,
                              std::int64_t grain, std::int64_t iterations,
                              std::uint8_t status, std::int64_t skipped,
                              degrade_reason degrade) {
  if (prof_ == nullptr) return;
  const std::uint64_t t_end = reg_.now();

  invocation_record rec;
  rec.start_ns = t_entry_;
  rec.pol = pol;
  rec.partitions = partitions;
  rec.grain = grain;
  rec.workers = reg_.num_workers();
  rec.iterations = iterations;
  rec.status = status;
  rec.skipped = skipped;
  rec.degrade = degrade;
  rec.wall_ns = t_end - t_entry_;
  rec.setup_ns = t_setup_ != 0 ? t_setup_ - t_entry_ : 0;
  rec.work_ns = t_work_ != 0 && t_setup_ != 0 ? t_work_ - t_setup_ : 0;
  rec.drain_ns = t_work_ != 0 ? t_end - t_work_ : 0;

  // Per-worker deltas: total rollup + busy imbalance in chunks executed.
  std::uint64_t busy_max = 0;
  std::uint64_t busy_min = ~std::uint64_t{0};
  std::uint64_t busy_sum = 0;
  for (std::uint32_t w = 0; w < reg_.num_workers(); ++w) {
    const counter_set d = reg_.of_worker(w) - before_[w];
    rec.delta += d;
    busy_max = std::max(busy_max, d.chunks_run);
    busy_min = std::min(busy_min, d.chunks_run);
    busy_sum += d.chunks_run;
  }
  rec.busy_max_chunks = busy_max;
  rec.busy_min_chunks = busy_sum == 0 ? 0 : busy_min;
  const double mean =
      static_cast<double>(busy_sum) / static_cast<double>(reg_.num_workers());
  rec.imbalance = busy_sum == 0 ? 0.0 : static_cast<double>(busy_max) / mean;

  const std::string key = site != nullptr ? site->key()
                          : label != nullptr ? std::string(label)
                                             : std::string(policy_name(pol));
  prof_->record(key, loop_profiler::n_bucket_of(iterations), std::move(rec));
}

}  // namespace hls::telemetry

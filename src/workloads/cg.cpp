#include "workloads/cg.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>

#include "sched/reduce.h"
#include "util/rng.h"

namespace hls::workloads::nas {

csr_matrix cg_make_matrix(const cg_params& p) {
  const std::int64_t n = p.n;
  xoshiro256ss rng(p.seed);

  // Build the strict upper triangle as (row -> {col: val}), then mirror.
  // Row nnz budget: skewed — most rows get ~avg/2, a few rows are dense
  // (up to 16x the average), as NPB's geometric column distribution yields.
  std::vector<std::map<std::int32_t, double>> upper(
      static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t budget = 1 + static_cast<std::int64_t>(
                                  rng.next_below(p.avg_nnz_per_row));
    if (rng.next_below(32) == 0) {
      budget *= 16;  // occasional dense row
    }
    for (std::int64_t k = 0; k < budget; ++k) {
      if (i + 1 >= n) break;
      const auto j = static_cast<std::int32_t>(
          i + 1 + static_cast<std::int64_t>(
                      rng.next_below(static_cast<std::uint64_t>(n - i - 1))));
      upper[static_cast<std::size_t>(i)][j] = rng.next_double() - 0.5;
    }
  }

  // Row sums of absolute off-diagonal values for diagonal dominance.
  std::vector<double> abs_row_sum(static_cast<std::size_t>(n), 0.0);
  std::vector<std::int64_t> row_count(static_cast<std::size_t>(n), 1);  // diag
  for (std::int64_t i = 0; i < n; ++i) {
    for (const auto& [j, v] : upper[static_cast<std::size_t>(i)]) {
      abs_row_sum[static_cast<std::size_t>(i)] += std::fabs(v);
      abs_row_sum[static_cast<std::size_t>(j)] += std::fabs(v);
      ++row_count[static_cast<std::size_t>(i)];
      ++row_count[static_cast<std::size_t>(j)];
    }
  }

  csr_matrix a;
  a.n = n;
  a.row_start.resize(static_cast<std::size_t>(n) + 1);
  a.row_start[0] = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    a.row_start[i + 1] = a.row_start[i] + row_count[static_cast<std::size_t>(i)];
  }
  a.col.resize(static_cast<std::size_t>(a.row_start[n]));
  a.val.resize(static_cast<std::size_t>(a.row_start[n]));

  std::vector<std::int64_t> cursor(a.row_start.begin(), a.row_start.end() - 1);
  auto put = [&](std::int64_t i, std::int32_t j, double v) {
    a.col[static_cast<std::size_t>(cursor[static_cast<std::size_t>(i)])] = j;
    a.val[static_cast<std::size_t>(cursor[static_cast<std::size_t>(i)])] = v;
    ++cursor[static_cast<std::size_t>(i)];
  };
  for (std::int64_t i = 0; i < n; ++i) {
    // Diagonal: dominance + shift => SPD.
    put(i, static_cast<std::int32_t>(i),
        abs_row_sum[static_cast<std::size_t>(i)] + p.shift);
    for (const auto& [j, v] : upper[static_cast<std::size_t>(i)]) {
      put(i, j, v);
      put(j, static_cast<std::int32_t>(i), v);
    }
  }
  return a;
}

cg_bench::cg_bench(const cg_params& p) : p_(p), a_(cg_make_matrix(p)) {}

void cg_bench::spmv(rt::runtime& rt, const std::vector<double>& x,
                    std::vector<double>& y, policy pol,
                    const loop_options& opt) {
  parallel_for(
      rt, 0, a_.n, pol,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          double s = 0.0;
          const std::int64_t rs = a_.row_start[i];
          const std::int64_t re = a_.row_start[i + 1];
          for (std::int64_t k = rs; k < re; ++k) {
            s += a_.val[static_cast<std::size_t>(k)] *
                 x[static_cast<std::size_t>(
                     a_.col[static_cast<std::size_t>(k)])];
          }
          y[static_cast<std::size_t>(i)] = s;
        }
      },
      opt);
}

double cg_bench::dot(rt::runtime& rt, const std::vector<double>& a,
                     const std::vector<double>& b, policy pol,
                     const loop_options& opt) {
  return parallel_sum<double>(
      rt, 0, static_cast<std::int64_t>(a.size()), pol,
      [&](std::int64_t i) {
        return a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
      },
      opt);
}

double cg_bench::cg_solve(rt::runtime& rt, const std::vector<double>& x,
                          std::vector<double>& z, policy pol,
                          const loop_options& opt) {
  const auto n = static_cast<std::size_t>(a_.n);
  std::vector<double> r = x, p = x, q(n, 0.0);
  z.assign(n, 0.0);
  double rho = dot(rt, r, r, pol, opt);

  for (int it = 0; it < p_.cg_iterations; ++it) {
    spmv(rt, p, q, pol, opt);
    const double alpha = rho / dot(rt, p, q, pol, opt);
    parallel_for(
        rt, 0, a_.n, pol,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            z[static_cast<std::size_t>(i)] +=
                alpha * p[static_cast<std::size_t>(i)];
            r[static_cast<std::size_t>(i)] -=
                alpha * q[static_cast<std::size_t>(i)];
          }
        },
        opt);
    const double rho_new = dot(rt, r, r, pol, opt);
    const double beta = rho_new / rho;
    rho = rho_new;
    parallel_for(
        rt, 0, a_.n, pol,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            p[static_cast<std::size_t>(i)] =
                r[static_cast<std::size_t>(i)] +
                beta * p[static_cast<std::size_t>(i)];
          }
        },
        opt);
  }

  // Residual ||x - A z||.
  spmv(rt, z, q, pol, opt);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = x[i] - q[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

kernel_result cg_bench::run(rt::runtime& rt, policy pol,
                            const loop_options& opt) {
  const auto n = static_cast<std::size_t>(a_.n);
  std::vector<double> x(n, 1.0), z(n, 0.0);
  double zeta = 0.0;
  double rnorm = 0.0;

  for (int outer = 0; outer < p_.outer_iterations; ++outer) {
    rnorm = cg_solve(rt, x, z, pol, opt);
    const double xz = dot(rt, x, z, pol, opt);
    zeta = p_.shift + 1.0 / xz;
    // x = z / ||z||
    const double znorm = std::sqrt(dot(rt, z, z, pol, opt));
    parallel_for(
        rt, 0, a_.n, pol,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            x[static_cast<std::size_t>(i)] =
                z[static_cast<std::size_t>(i)] / znorm;
          }
        },
        opt);
  }

  kernel_result kr;
  std::ostringstream os;
  os << "zeta=" << zeta << " rnorm=" << rnorm;
  // CG on an SPD diagonally-dominant system converges fast: after 25 inner
  // steps the residual must be tiny relative to ||x|| = O(sqrt(n)).
  const bool ok = std::isfinite(zeta) && rnorm < 1e-8 * std::sqrt(
                                                       static_cast<double>(n));
  kr.verified = ok;
  kr.checksum = zeta;
  kr.detail = os.str();
  kr.mflops_proxy = static_cast<double>(a_.nnz()) * 2.0 *
                    p_.cg_iterations * p_.outer_iterations / 1e6;
  return kr;
}

sim::workload_spec cg_spec(const cg_params& p) {
  // Build the matrix once to extract the true row-nnz profile.
  const csr_matrix a = cg_make_matrix(p);
  auto row_nnz = std::make_shared<std::vector<std::int64_t>>();
  row_nnz->reserve(static_cast<std::size_t>(a.n));
  for (std::int64_t i = 0; i < a.n; ++i) row_nnz->push_back(a.row_nnz(i));

  sim::workload_spec w;
  w.name = "nas_cg";
  w.outer_iterations = p.outer_iterations * p.cg_iterations;
  w.region_count = a.n;
  w.total_bytes =
      static_cast<std::uint64_t>(a.nnz()) * 12 +  // val + col
      static_cast<std::uint64_t>(a.n) * 8 * 4;    // x, z, r, p

  const double bytes_per_nnz = 12.0;
  // The unbalanced spmv loop: cost and footprint proportional to row nnz.
  sim::loop_spec mv;
  mv.n = a.n;
  mv.cpu_ns = [row_nnz](std::int64_t i) {
    return 2.0 * static_cast<double>((*row_nnz)[static_cast<std::size_t>(i)]);
  };
  mv.bytes = [row_nnz, bytes_per_nnz](std::int64_t i) -> std::uint64_t {
    return static_cast<std::uint64_t>(
        bytes_per_nnz * static_cast<double>(
                            (*row_nnz)[static_cast<std::size_t>(i)]) +
        24.0);
  };
  w.loops.push_back(std::move(mv));

  // Two balanced vector-update loops per CG step.
  for (int v = 0; v < 2; ++v) {
    sim::loop_spec vec;
    vec.n = a.n;
    vec.cpu_ns = [](std::int64_t) { return 1.5; };
    vec.bytes = [](std::int64_t) -> std::uint64_t { return 24; };
    w.loops.push_back(std::move(vec));
  }
  return w;
}

}  // namespace hls::workloads::nas

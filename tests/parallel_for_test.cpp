// End-to-end correctness of parallel_for under every policy: each iteration
// executes exactly once, results are correct, and the default grain matches
// the cilk_for formula.
#include "sched/loop.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "trace/loop_trace.h"

namespace hls {
namespace {

struct PfCase {
  policy pol;
  std::uint32_t workers;
  std::int64_t n;
};

std::string case_name(const ::testing::TestParamInfo<PfCase>& info) {
  return std::string(policy_name(info.param.pol)) + "_p" +
         std::to_string(info.param.workers) + "_n" +
         std::to_string(info.param.n);
}

class ParallelFor : public ::testing::TestWithParam<PfCase> {};

TEST_P(ParallelFor, EveryIterationExecutesExactlyOnce) {
  const auto [pol, workers, n] = GetParam();
  rt::runtime rt(workers);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  for (auto& h : hits) h.store(0);

  for_each(rt, 0, n, pol, [&](std::int64_t i) { hits[i].fetch_add(1); });

  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "iteration " << i;
  }
}

TEST_P(ParallelFor, ComputesCorrectSum) {
  const auto [pol, workers, n] = GetParam();
  rt::runtime rt(workers);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for_each(rt, 0, n, pol, [&](std::int64_t i) { out[i] = i * i; });
  std::int64_t sum = std::accumulate(out.begin(), out.end(), std::int64_t{0});
  const std::int64_t expect = (n - 1) * n * (2 * n - 1) / 6;
  EXPECT_EQ(sum, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ParallelFor,
    ::testing::ValuesIn([] {
      std::vector<PfCase> cases;
      for (policy pol : {policy::serial, policy::static_part,
                         policy::dynamic_shared, policy::guided,
                         policy::dynamic_ws, policy::hybrid}) {
        for (std::uint32_t p : {1u, 2u, 3u, 4u, 8u}) {
          for (std::int64_t n : {1, 7, 64, 1000}) {
            cases.push_back({pol, p, n});
          }
        }
      }
      return cases;
    }()),
    case_name);

TEST(ParallelForBasics, EmptyRangeIsNoOp) {
  rt::runtime rt(2);
  for (policy pol : kAllParallelPolicies) {
    int calls = 0;
    parallel_for(rt, 5, 5, pol, [&](std::int64_t, std::int64_t) { ++calls; });
    parallel_for(rt, 7, 3, pol, [&](std::int64_t, std::int64_t) { ++calls; });
    EXPECT_EQ(calls, 0) << policy_name(pol);
  }
}

TEST(ParallelForBasics, NonZeroBase) {
  rt::runtime rt(4);
  for (policy pol : kAllParallelPolicies) {
    std::atomic<std::int64_t> sum{0};
    for_each(rt, 100, 200, pol, [&](std::int64_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2) << policy_name(pol);
  }
}

TEST(ParallelForBasics, ChunksCoverRangeWithoutOverlap) {
  rt::runtime rt(4);
  for (policy pol : kAllParallelPolicies) {
    trace::loop_trace tr(rt.num_workers());
    loop_options opt;
    opt.trace = &tr;
    parallel_for(rt, 0, 777, pol, [](std::int64_t, std::int64_t) {}, opt);
    EXPECT_EQ(tr.total_iterations(), 777) << policy_name(pol);
    const auto owners = tr.iteration_owners(0, 777);
    for (std::size_t i = 0; i < owners.size(); ++i) {
      EXPECT_NE(owners[i], trace::loop_trace::kNoOwner)
          << policy_name(pol) << " iteration " << i;
    }
  }
}

TEST(ParallelForBasics, NestedParallelLoops) {
  rt::runtime rt(4);
  constexpr std::int64_t kOuter = 8;
  constexpr std::int64_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0);
  for_each(rt, 0, kOuter, policy::dynamic_ws, [&](std::int64_t o) {
    for_each(rt, 0, kInner, policy::hybrid, [&](std::int64_t i) {
      hits[o * kInner + i].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForBasics, LargeIterationCountSmallBody) {
  rt::runtime rt(4);
  std::atomic<std::int64_t> count{0};
  constexpr std::int64_t kN = 1 << 18;
  for (policy pol : kAllParallelPolicies) {
    count.store(0);
    for_each(rt, 0, kN, pol, [&](std::int64_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), kN) << policy_name(pol);
  }
}

TEST(DefaultGrain, MatchesCilkFormula) {
  // min(2048, ceil(N / 8P)), floor 1
  EXPECT_EQ(default_grain(16384, 1), 2048);
  EXPECT_EQ(default_grain(16384, 8), 256);
  EXPECT_EQ(default_grain(16385, 8), 257);
  EXPECT_EQ(default_grain(100, 8), 2);
  EXPECT_EQ(default_grain(7, 8), 1);
  EXPECT_EQ(default_grain(0, 8), 1);
  EXPECT_EQ(default_grain(1 << 30, 4), 2048);
}

TEST(PolicyNames, RoundTrip) {
  for (policy pol :
       {policy::serial, policy::static_part, policy::dynamic_shared,
        policy::guided, policy::dynamic_ws, policy::hybrid}) {
    const auto parsed = policy_from_name(policy_name(pol));
    ASSERT_TRUE(parsed.has_value()) << policy_name(pol);
    EXPECT_EQ(*parsed, pol);
  }
  EXPECT_FALSE(policy_from_name("nope").has_value());
  EXPECT_EQ(policy_from_name("vanilla"), policy::dynamic_ws);
  EXPECT_EQ(policy_from_name("omp_guided"), policy::guided);
}

TEST(LoopOptions, ExplicitGrainRespectedByTraceChunkSizes) {
  rt::runtime rt(2);
  trace::loop_trace tr(rt.num_workers());
  loop_options opt;
  opt.grain = 16;
  opt.trace = &tr;
  parallel_for(rt, 0, 256, policy::dynamic_ws,
               [](std::int64_t, std::int64_t) {}, opt);
  for (const auto& c : tr.sorted_by_seq()) {
    EXPECT_LE(c.end - c.begin, 16);
  }
  EXPECT_EQ(tr.total_iterations(), 256);
}

TEST(LoopOptions, ForeignThreadRecordsOnForeignTraceLane) {
  rt::runtime rt(2);
  trace::loop_trace tr(rt.num_workers());
  loop_options opt;
  opt.grain = 16;
  opt.trace = &tr;
  std::atomic<std::int64_t> sum{0};
  // A thread not bound to the runtime degrades to serial execution; its
  // chunks must land on the foreign lane, never on worker 0's.
  std::thread outsider([&] {
    parallel_for(rt, 0, 256, policy::dynamic_ws,
                 [&](std::int64_t lo, std::int64_t hi) {
                   sum.fetch_add(hi - lo, std::memory_order_relaxed);
                 },
                 opt);
  });
  outsider.join();
  EXPECT_EQ(sum.load(), 256);
  EXPECT_EQ(tr.total_iterations(), 256);
  EXPECT_EQ(tr.of_worker(0).size(), 0u);
  EXPECT_GT(tr.foreign_chunks().size(), 0u);
  for (const auto& c : tr.foreign_chunks()) {
    EXPECT_EQ(c.worker, trace::loop_trace::kForeignLane);
  }
}

TEST(LoopOptions, SharedQueueChunkSizeRespected) {
  rt::runtime rt(2);
  trace::loop_trace tr(rt.num_workers());
  loop_options opt;
  opt.chunk = 10;
  opt.trace = &tr;
  parallel_for(rt, 0, 95, policy::dynamic_shared,
               [](std::int64_t, std::int64_t) {}, opt);
  const auto chunks = tr.sorted_by_seq();
  for (const auto& c : chunks) {
    EXPECT_LE(c.end - c.begin, 10);
  }
  EXPECT_EQ(tr.total_iterations(), 95);
}

TEST(StaticPolicy, EachWorkerOwnsOneContiguousBlock) {
  constexpr std::uint32_t kP = 4;
  rt::runtime rt(kP);
  trace::loop_trace tr(kP);
  loop_options opt;
  opt.trace = &tr;
  parallel_for(rt, 0, 100, policy::static_part,
               [](std::int64_t, std::int64_t) {}, opt);
  // Exactly P chunks, one per worker, deterministic block boundaries.
  ASSERT_EQ(tr.chunk_count(), kP);
  for (std::uint32_t w = 0; w < kP; ++w) {
    ASSERT_EQ(tr.of_worker(w).size(), 1u) << "worker " << w;
    const auto& c = tr.of_worker(w).front();
    EXPECT_EQ(c.begin, w * 25);
    EXPECT_EQ(c.end, (w + 1) * 25);
  }
}

TEST(StaticPolicy, DeterministicAcrossRuns) {
  constexpr std::uint32_t kP = 3;
  rt::runtime rt(kP);
  for (int run = 0; run < 3; ++run) {
    trace::loop_trace tr(kP);
    loop_options opt;
    opt.trace = &tr;
    parallel_for(rt, 0, 10, policy::static_part,
                 [](std::int64_t, std::int64_t) {}, opt);
    const auto owners = tr.iteration_owners(0, 10);
    // 10 = 3*3+1: blocks of 4,3,3
    const std::vector<std::uint32_t> expect{0, 0, 0, 0, 1, 1, 1, 2, 2, 2};
    EXPECT_EQ(owners, expect);
  }
}

}  // namespace
}  // namespace hls

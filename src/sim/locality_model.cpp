#include "sim/locality_model.h"

#include <algorithm>

#include "util/bits.h"

namespace hls::sim {

access_counts& access_counts::operator+=(const access_counts& o) noexcept {
  l1 += o.l1;
  l2 += o.l2;
  l3 += o.l3;
  dram_local += o.dram_local;
  remote_l3 += o.remote_l3;
  dram_remote += o.dram_remote;
  return *this;
}

double access_counts::inferred_latency_ns(const machine_desc& m,
                                          bool include_l1) const noexcept {
  double lat = l2 * m.lat_l2 + l3 * m.lat_l3 + dram_local * m.lat_dram_local +
               remote_l3 * m.lat_remote_l3 + dram_remote * m.lat_dram_remote;
  if (include_l1) lat += l1 * m.lat_l1;
  return lat;
}

locality_model::locality_model(const machine_desc& m, const workload_spec& w,
                               std::uint32_t p_used)
    : m_(m), p_used_(p_used == 0 ? 1 : p_used) {
  per_core_bytes_ = w.total_bytes / p_used_;
  per_socket_bytes_ = w.total_bytes / m_.sockets_used(p_used_);
  l2_fit_ = per_core_bytes_ == 0
                ? 1.0
                : std::min(1.0, static_cast<double>(m_.l2_bytes) /
                                    static_cast<double>(per_core_bytes_));
  l3_fit_ = per_socket_bytes_ == 0
                ? 1.0
                : std::min(1.0, static_cast<double>(m_.l3_bytes) /
                                    static_cast<double>(per_socket_bytes_));

  const std::size_t regions =
      static_cast<std::size_t>(w.region_count > 0 ? w.region_count : 1);
  last_core_.assign(regions, -1);
  // NUMA-aware first touch: region r is homed where the initial static
  // distribution places it (paper: "NUMA-aware memory allocation to
  // distribute the data across sockets").
  home_.resize(regions);
  for (std::size_t r = 0; r < regions; ++r) {
    const std::uint32_t owner = static_cast<std::uint32_t>(
        r * p_used_ / regions);  // balanced static block owner
    home_[r] = m_.socket_of(owner);
  }
}

double locality_model::access_ns(const loop_spec& loop, std::int64_t i,
                                 std::uint32_t core) {
  const std::uint64_t bytes = loop.region_bytes(i);
  if (bytes == 0) return 0.0;
  const auto r = static_cast<std::size_t>(loop.region(i));
  const double lines = static_cast<double>(
      ceil_div(bytes, m_.line_bytes));

  const std::uint32_t socket = m_.socket_of(core);
  const std::int32_t last = last_core_[r];
  last_core_[r] = static_cast<std::int32_t>(core);

  // Throughput-effective latencies for the long-latency levels (see
  // machine_desc::mlp_long); counts stay unscaled.
  const double mlp = m_.mlp_long < 1.0 ? 1.0 : m_.mlp_long;
  const double eff_dram_local = m_.lat_dram_local / mlp;
  const double eff_dram_remote = m_.lat_dram_remote / mlp;
  const double eff_remote_l3 = m_.lat_remote_l3 / mlp;

  double ns;
  if (last == static_cast<std::int32_t>(core)) {
    // Re-touch by the same core: L2 to the extent the per-core footprint
    // fits, spilling to the socket L3, then to home DRAM.
    const double l2_lines = lines * l2_fit_;
    const double l3_lines = (lines - l2_lines) * l3_fit_;
    const double dram_lines = lines - l2_lines - l3_lines;
    const double dram_lat =
        home_[r] == socket ? eff_dram_local : eff_dram_remote;
    counts_.l2 += l2_lines;
    counts_.l3 += l3_lines;
    (home_[r] == socket ? counts_.dram_local : counts_.dram_remote) +=
        dram_lines;
    ns = l2_lines * m_.lat_l2 + l3_lines * m_.lat_l3 + dram_lines * dram_lat;
  } else if (last >= 0 &&
             m_.socket_of(static_cast<std::uint32_t>(last)) == socket) {
    // Same socket, different core: shared L3 to the extent it fits.
    const double l3_lines = lines * l3_fit_;
    const double dram_lines = lines - l3_lines;
    const double dram_lat =
        home_[r] == socket ? eff_dram_local : eff_dram_remote;
    counts_.l3 += l3_lines;
    (home_[r] == socket ? counts_.dram_local : counts_.dram_remote) +=
        dram_lines;
    ns = l3_lines * m_.lat_l3 + dram_lines * dram_lat;
  } else if (last >= 0) {
    // Cross-socket migration: lines still cached remotely are serviced from
    // the remote L3; the rest from DRAM at the region's home.
    const double rl3_lines = lines * l3_fit_;
    const double dram_lines = lines - rl3_lines;
    const double dram_lat =
        home_[r] == socket ? eff_dram_local : eff_dram_remote;
    counts_.remote_l3 += rl3_lines;
    (home_[r] == socket ? counts_.dram_local : counts_.dram_remote) +=
        dram_lines;
    ns = rl3_lines * eff_remote_l3 + dram_lines * dram_lat;
  } else {
    // Cold: all lines from the region's home DRAM.
    const double dram_lat =
        home_[r] == socket ? eff_dram_local : eff_dram_remote;
    (home_[r] == socket ? counts_.dram_local : counts_.dram_remote) += lines;
    ns = lines * dram_lat;
  }
  return ns;
}

}  // namespace hls::sim

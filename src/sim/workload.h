// Workload description consumed by the discrete-event simulator.
//
// An iterative application is a sequence of parallel loops separated by
// short serial sections (the structure of the paper's microbenchmarks and
// of the NAS kernels). Each loop gives per-iteration compute cost and the
// size of the private data region the iteration touches; the locality model
// turns region reuse into memory latency.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hls::sim {

struct loop_spec {
  std::int64_t n = 0;  // iteration count

  // Pure compute (non-memory) cost of iteration i, ns.
  std::function<double(std::int64_t)> cpu_ns;

  // Bytes of this iteration's private data region (paper microbenchmarks:
  // disjoint array slices walked with stride 13).
  std::function<std::uint64_t(std::int64_t)> bytes;

  // Region identity: iterations with the same region id share data. For the
  // microbenchmarks this is the iteration index itself. Defaults to i.
  std::function<std::int64_t(std::int64_t)> region_of;

  // Optional per-iteration work annotation for the hybrid policy's
  // weighted initial partitioning (paper Section VI extension).
  std::function<double(std::int64_t)> iteration_weight;

  // Scheduling parameters; 0 = the platform default (min(2048, N/8P)).
  std::int64_t grain = 0;
  std::int64_t chunk = 0;
  std::int64_t min_chunk = 1;
  std::uint32_t partitions = 0;

  std::int64_t region(std::int64_t i) const {
    return region_of ? region_of(i) : i;
  }
  double cpu(std::int64_t i) const { return cpu_ns ? cpu_ns(i) : 0.0; }
  std::uint64_t region_bytes(std::int64_t i) const {
    return bytes ? bytes(i) : 0;
  }
};

struct workload_spec {
  std::string name;

  // The loop body sequence of ONE outer (time-step) iteration.
  std::vector<loop_spec> loops;

  // Number of outer iterations (repetitions of `loops`). Iterative
  // applications repeat the same loops over the same data, which is what
  // static/hybrid affinity exploits.
  int outer_iterations = 1;

  // Total bytes of the data the loops traverse (the working set).
  std::uint64_t total_bytes = 0;

  // Number of distinct regions (>= max region id + 1 across loops).
  std::int64_t region_count = 0;
};

}  // namespace hls::sim

// Discrete-event simulator correctness: determinism, conservation of work,
// per-policy scheduling behaviour, and the paper's qualitative performance
// claims at the 32-core scale (which this host cannot measure natively).
#include "sim/engine.h"

#include <gtest/gtest.h>

#include "sim/report.h"
#include "util/bits.h"
#include "workloads/micro.h"

namespace hls::sim {
namespace {

using workloads::micro_params;
using workloads::micro_spec;

machine_desc paper_machine() { return machine_desc{}; }

micro_params small_balanced() {
  micro_params p;
  p.iterations = 512;
  p.total_bytes = 8ull << 20;
  p.balanced = true;
  p.outer_iterations = 3;
  return p;
}

micro_params small_unbalanced() {
  micro_params p = small_balanced();
  p.balanced = false;
  return p;
}

TEST(SimEngine, DeterministicAcrossRuns) {
  const auto w = micro_spec(small_balanced());
  for (policy pol : kAllParallelPolicies) {
    sim_options opt;
    opt.seed = 99;
    const auto a = simulate(paper_machine(), w, pol, opt);
    const auto b = simulate(paper_machine(), w, pol, opt);
    EXPECT_EQ(a.makespan_ns, b.makespan_ns) << policy_name(pol);
    EXPECT_EQ(a.chunks, b.chunks) << policy_name(pol);
    EXPECT_EQ(a.steals, b.steals) << policy_name(pol);
    EXPECT_EQ(a.affinity, b.affinity) << policy_name(pol);
  }
}

TEST(SimEngine, SeedChangesDynamicScheduleButNotCoverage) {
  const auto w = micro_spec(small_balanced());
  sim_options a, b;
  a.seed = 1;
  b.seed = 2;
  a.record_owners = b.record_owners = true;
  const auto ra = simulate(paper_machine(), w, policy::dynamic_ws, a);
  const auto rb = simulate(paper_machine(), w, policy::dynamic_ws, b);
  ASSERT_EQ(ra.owners_per_loop.size(), rb.owners_per_loop.size());
  // Coverage identical (every iteration owned), schedule may differ.
  for (const auto& owners : ra.owners_per_loop) {
    for (auto o : owners) EXPECT_LT(o, paper_machine().workers);
  }
}

TEST(SimEngine, AllPoliciesScheduleEveryIteration) {
  const auto w = micro_spec(small_balanced());
  for (policy pol : kAllParallelPolicies) {
    sim_options opt;
    opt.record_schedule = true;
    const auto r = simulate(paper_machine(), w, pol, opt);
    std::int64_t iters = 0;
    for (const auto& c : r.schedule) iters += c.end - c.begin;
    EXPECT_EQ(iters, w.loops[0].n * w.outer_iterations) << policy_name(pol);
  }
}

TEST(SimEngine, SerialEqualsTsBaseline) {
  const auto w = micro_spec(small_balanced());
  const double ts = simulate_serial(paper_machine(), w);
  const auto r = simulate(paper_machine(), w, policy::serial);
  EXPECT_DOUBLE_EQ(r.makespan_ns, ts);
  EXPECT_GT(ts, 0.0);
}

TEST(SimEngine, OneWorkerCostsAtLeastSerial) {
  const auto w = micro_spec(small_balanced());
  const double ts = simulate_serial(paper_machine(), w);
  for (policy pol : kAllParallelPolicies) {
    const auto r = simulate(paper_machine().with_workers(1), w, pol);
    EXPECT_GE(r.makespan_ns, ts * 0.999) << policy_name(pol);
    // Overhead should be modest: work efficiency near 1 (paper Fig. 1 first
    // column).
    EXPECT_LT(r.makespan_ns, ts * 1.35) << policy_name(pol);
  }
}

TEST(SimEngine, ParallelismHelpsEveryPolicyOnBalancedWork) {
  const auto w = micro_spec(small_balanced());
  for (policy pol : kAllParallelPolicies) {
    const auto t1 = simulate(paper_machine().with_workers(1), w, pol);
    const auto t8 = simulate(paper_machine().with_workers(8), w, pol);
    EXPECT_LT(t8.makespan_ns, t1.makespan_ns / 2.5) << policy_name(pol);
  }
}

TEST(SimEngine, MakespanNeverBelowCriticalPath) {
  // TP >= T1/P is a physical law of the simulation (work conservation).
  const auto w = micro_spec(small_unbalanced());
  for (policy pol : kAllParallelPolicies) {
    const auto t1 = simulate(paper_machine().with_workers(1), w, pol);
    for (std::uint32_t p : {2u, 4u, 8u, 16u, 32u}) {
      const auto tp = simulate(paper_machine().with_workers(p), w, pol);
      EXPECT_GE(tp.makespan_ns * p, t1.makespan_ns * 0.8)
          << policy_name(pol) << " P=" << p;
    }
  }
}

TEST(SimEngine, StaticUsesExactlyPChunksPerLoop) {
  const auto w = micro_spec(small_balanced());
  sim_options opt;
  opt.record_schedule = true;
  const auto r =
      simulate(paper_machine().with_workers(8), w, policy::static_part, opt);
  EXPECT_EQ(r.chunks, 8u * w.outer_iterations);
  EXPECT_EQ(r.steals, 0u);
}

TEST(SimEngine, HybridClaimsEveryPartitionOncePerLoop) {
  const auto w = micro_spec(small_balanced());
  for (std::uint32_t p : {1u, 2u, 5u, 8u, 32u}) {
    const auto r = simulate(paper_machine().with_workers(p), w,
                            policy::hybrid);
    const std::uint64_t parts = next_pow2(p);
    EXPECT_EQ(r.successful_claims,
              parts * static_cast<std::uint64_t>(w.outer_iterations))
        << "P=" << p;
  }
}

TEST(SimEngine, SharedQueueAccessesMatchChunkCount) {
  const auto w = micro_spec(small_balanced());
  const auto r = simulate(paper_machine().with_workers(8), w,
                          policy::dynamic_shared);
  // Every chunk needs one queue access; drained probes add a few more.
  EXPECT_GE(r.queue_accesses, r.chunks);
}

TEST(SimEngine, GuidedUsesFewerChunksThanDynamicShared) {
  // The paper's rationale for guided: decreasing chunks => fewer queue
  // round-trips than fixed-size dynamic partitioning.
  auto p = small_balanced();
  p.outer_iterations = 1;
  auto w = micro_spec(p);
  // OpenMP's dynamic default is chunk size 1 (paper Section V); guided's
  // decreasing chunks are its answer to the resulting queue traffic.
  w.loops[0].chunk = 1;
  machine_desc m = paper_machine().with_workers(16);
  auto mk = [&](policy pol) { return simulate(m, w, pol); };
  const auto guided = mk(policy::guided);
  const auto dyn = mk(policy::dynamic_shared);
  EXPECT_LT(guided.chunks, dyn.chunks);
}

// ------- The paper's headline qualitative claims, at simulated 32 cores ----

TEST(PaperClaims, BalancedIterativeStaticAndHybridBeatDynamic) {
  micro_params p;
  p.iterations = 2048;
  p.total_bytes = workloads::kWsUnderL3;
  p.balanced = true;
  p.outer_iterations = 6;
  const auto w = micro_spec(p);
  const machine_desc m = paper_machine().with_workers(32);

  const double t_static =
      simulate(m, w, policy::static_part).makespan_ns;
  const double t_hybrid = simulate(m, w, policy::hybrid).makespan_ns;
  const double t_vanilla = simulate(m, w, policy::dynamic_ws).makespan_ns;

  // Fig. 1 top row: static best, hybrid follows closely, vanilla lags on
  // cross-socket balanced iterative workloads.
  EXPECT_LE(t_static, t_hybrid * 1.05);
  EXPECT_LT(t_hybrid, t_vanilla);
}

TEST(PaperClaims, UnbalancedStaticLagsBehindHybrid) {
  micro_params p;
  p.iterations = 2048;
  p.total_bytes = workloads::kWsUnderL3;
  p.balanced = false;
  p.outer_iterations = 6;
  const auto w = micro_spec(p);
  const machine_desc m = paper_machine().with_workers(32);

  const double t_static =
      simulate(m, w, policy::static_part).makespan_ns;
  const double t_hybrid = simulate(m, w, policy::hybrid).makespan_ns;
  const double t_guided = simulate(m, w, policy::guided).makespan_ns;

  // Fig. 1 bottom row: the heaviest static block (~3.3x mean work)
  // dominates static's makespan; hybrid load-balances it away and lands in
  // the same league as guided.
  EXPECT_LT(t_hybrid, t_static * 0.9);
  EXPECT_LT(t_hybrid, t_guided * 1.15);
}

TEST(PaperClaims, HybridAffinityNearOneBalanced) {
  micro_params p;
  p.iterations = 2048;
  p.total_bytes = workloads::kWsUnderL3;
  p.balanced = true;
  p.outer_iterations = 8;
  const auto w = micro_spec(p);
  const machine_desc m = paper_machine().with_workers(32);

  const auto hybrid = simulate(m, w, policy::hybrid);
  const auto vanilla = simulate(m, w, policy::dynamic_ws);
  const auto stat = simulate(m, w, policy::static_part);

  // Fig. 2: hybrid 99.99 %, static 100 %, vanilla ~3 %.
  EXPECT_DOUBLE_EQ(stat.affinity, 1.0);
  EXPECT_GT(hybrid.affinity, 0.95);
  EXPECT_LT(vanilla.affinity, 0.45);
  EXPECT_GT(hybrid.affinity, vanilla.affinity + 0.4);
}

TEST(PaperClaims, VanillaShiftsMissesToRemoteMemory) {
  micro_params p;
  p.iterations = 2048;
  p.total_bytes = workloads::kWsAboveL3;  // DRAM-bound working set
  p.balanced = true;
  p.outer_iterations = 4;
  const auto w = micro_spec(p);
  const machine_desc m = paper_machine().with_workers(32);

  const auto hybrid = simulate(m, w, policy::hybrid);
  const auto vanilla = simulate(m, w, policy::dynamic_ws);

  // Fig. 4's pattern: hybrid misses serviced mostly by LOCAL DRAM, vanilla
  // shifts a large share to REMOTE DRAM / remote L3.
  const double hybrid_remote = hybrid.mem.dram_remote + hybrid.mem.remote_l3;
  const double vanilla_remote =
      vanilla.mem.dram_remote + vanilla.mem.remote_l3;
  EXPECT_GT(hybrid.mem.dram_local, hybrid_remote);
  EXPECT_GT(vanilla_remote, hybrid_remote * 1.5);
}

TEST(PaperClaims, StragglersHurtStaticFarMoreThanHybrid) {
  // Section I: static partitioning performs poorly when cores arrive at the
  // loop at different times; the hybrid claim protocol hands a straggler's
  // earmarked partition to whoever shows up.
  micro_params p;
  p.iterations = 2048;
  p.total_bytes = workloads::kWsUnderL3;
  p.balanced = true;
  p.outer_iterations = 6;
  const auto w = micro_spec(p);
  const machine_desc m = paper_machine().with_workers(32);

  sim_options calm, rough;
  rough.straggler_fraction = 0.25;
  rough.straggler_delay_ns = 5e6;  // 5 ms stragglers

  const double static_calm =
      simulate(m, w, policy::static_part, calm).makespan_ns;
  const double static_rough =
      simulate(m, w, policy::static_part, rough).makespan_ns;
  const double hybrid_rough =
      simulate(m, w, policy::hybrid, rough).makespan_ns;

  EXPECT_GT(static_rough, static_calm * 3.0) << "static must stall";
  EXPECT_LT(hybrid_rough, static_rough * 0.6)
      << "hybrid redistributes straggler partitions";
}

TEST(SimEngine, OverheadDecompositionMatchesPolicyMechanism) {
  // Each policy pays in its own currency: central-queue schemes in queue
  // time, hybrid in claims (plus steals when unbalanced), vanilla in
  // steals; static pays only dispatch.
  const auto w = micro_spec(small_unbalanced());
  const machine_desc m = paper_machine().with_workers(16);

  const auto stat = simulate(m, w, policy::static_part);
  EXPECT_EQ(stat.steal_ns, 0.0);
  EXPECT_EQ(stat.claim_ns, 0.0);
  EXPECT_EQ(stat.queue_ns, 0.0);
  EXPECT_GT(stat.dispatch_ns, 0.0);

  const auto shared = simulate(m, w, policy::dynamic_shared);
  EXPECT_GT(shared.queue_ns, 0.0);
  EXPECT_EQ(shared.steal_ns, 0.0);

  const auto hybrid = simulate(m, w, policy::hybrid);
  EXPECT_GT(hybrid.claim_ns, 0.0);
  EXPECT_EQ(hybrid.queue_ns, 0.0);

  const auto vanilla = simulate(m, w, policy::dynamic_ws);
  EXPECT_GT(vanilla.steal_ns, 0.0);
  EXPECT_EQ(vanilla.claim_ns, 0.0);
}

TEST(SimEngine, UtilizationReflectsLoadBalance) {
  // Balanced loops keep every worker busy; static scheduling of the
  // unbalanced ramp idles the light-block workers while the heavy block
  // finishes.
  micro_params bal = small_balanced();
  micro_params unb = small_unbalanced();
  const machine_desc m = paper_machine().with_workers(32);
  const auto rb = simulate(m, micro_spec(bal), policy::hybrid);
  const auto ru = simulate(m, micro_spec(unb), policy::static_part);
  EXPECT_GT(rb.utilization, 0.6);
  EXPECT_LE(rb.utilization, 1.0 + 1e-9);
  EXPECT_LT(ru.utilization, rb.utilization);
  ASSERT_EQ(rb.busy_ns_per_worker.size(), 32u);
  for (double b : rb.busy_ns_per_worker) EXPECT_GT(b, 0.0);
}

TEST(SweepReport, ProducesMonotoneSpeedupForHybridBalanced) {
  micro_params p;
  p.iterations = 1024;
  p.total_bytes = 16ull << 20;
  p.balanced = true;
  p.outer_iterations = 3;
  const auto w = micro_spec(p);
  const std::vector<std::uint32_t> workers{1, 2, 4, 8, 16, 32};
  const auto sweep =
      sweep_workers(paper_machine(), w, policy::hybrid, workers);
  EXPECT_GT(sweep.work_efficiency, 0.7);
  EXPECT_LE(sweep.work_efficiency, 1.01);
  ASSERT_EQ(sweep.points.size(), workers.size());
  // Speedup grows with P (allowing mild flattening at the top).
  EXPECT_GT(sweep.points[3].speedup, sweep.points[0].speedup);
  EXPECT_GT(sweep.points.back().speedup, 4.0);
}

// Push-based handoff A/B (sim_options::push_handoff). Every iteration must
// still be scheduled exactly once — a dropped donation would show up as a
// coverage hole here. (work_ns is NOT compared: it includes locality
// costs, which legitimately move when the chunk->core mapping changes.)
TEST(SimEngine, PushHandoffPreservesCoverage) {
  const auto w = micro_spec(small_balanced());
  sim_options opt;
  opt.push_handoff = true;
  opt.record_schedule = true;
  for (policy pol : {policy::dynamic_ws, policy::hybrid}) {
    const auto r = simulate(paper_machine(), w, pol, opt);
    std::int64_t iters = 0;
    for (const auto& c : r.schedule) iters += c.end - c.begin;
    EXPECT_EQ(iters, w.loops[0].n * w.outer_iterations) << policy_name(pol);
  }
}

TEST(SimEngine, PushHandoffOffIsBitIdenticalToTheOldModel) {
  // The knob must not perturb the pull model: fig1/fig3 baselines are
  // simulator outputs and gate on exact speedups.
  const auto w = micro_spec(small_unbalanced());
  sim_options off;
  off.straggler_fraction = 0.3;
  off.straggler_delay_ns = 50000.0;
  const auto a = simulate(paper_machine(), w, policy::dynamic_ws, off);
  const auto b = simulate(paper_machine(), w, policy::dynamic_ws, off);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_EQ(a.handoffs, 0u);
  EXPECT_EQ(a.handoff_ns, 0.0);
}

TEST(SimEngine, PushHandoffDonatesAndHelpsWideTeamsWithStragglers) {
  micro_params p = small_balanced();
  p.iterations = 4096;
  p.outer_iterations = 16;
  const auto w = micro_spec(p);
  sim_options opt;
  opt.straggler_fraction = 0.25;
  opt.straggler_delay_ns = 50000.0;
  const auto probe = simulate(paper_machine(), w, policy::dynamic_ws, opt);
  opt.push_handoff = true;
  const auto push = simulate(paper_machine(), w, policy::dynamic_ws, opt);
  EXPECT_GT(push.handoffs, 0u);
  EXPECT_GT(push.handoff_ns, 0.0);
  EXPECT_GT(push.wakes, 0u);
  // Donated wakes replace steal migrations and close instances sooner.
  EXPECT_LT(push.steals, probe.steals);
  EXPECT_LE(push.makespan_ns, probe.makespan_ns * 1.02);
}

}  // namespace
}  // namespace hls::sim

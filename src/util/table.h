// Aligned-column table printing for benchmark output.
//
// Every bench binary prints the same rows/series the paper's figures report;
// this utility keeps that output readable and machine-parsable (CSV mode).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace hls {

class table {
 public:
  explicit table(std::vector<std::string> header);

  table& add_row(std::vector<std::string> cells);

  // Formats a double with the given precision (fixed notation).
  static std::string fmt(double v, int precision = 3);
  // Scientific notation, as the paper's Fig. 4 hardware-count table uses.
  static std::string fmt_sci(double v, int precision = 2);
  static std::string fmt_pct(double fraction, int precision = 2);

  void print(std::ostream& os) const;       // aligned columns
  void print_csv(std::ostream& os) const;   // comma separated

  // JSON lines: one object per row keyed by the header, plus the given
  // extra key/value pairs on every object (e.g. the bench section name).
  // Cells that parse as JSON numbers are emitted unquoted, so downstream
  // tooling gets real numbers without scraping.
  void print_json(
      std::ostream& os,
      const std::vector<std::pair<std::string, std::string>>& extra = {})
      const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hls

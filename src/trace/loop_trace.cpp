#include "trace/loop_trace.h"

#include <algorithm>

namespace hls::trace {

loop_trace::loop_trace(std::uint32_t num_workers)
    : per_worker_(num_workers) {}

void loop_trace::record(std::uint32_t worker, std::int64_t begin,
                        std::int64_t end) {
  const std::uint64_t s = seq_.fetch_add(1, std::memory_order_relaxed);
  if (worker == kForeignLane) {
    // Foreign threads have no per-worker buffer of their own and may run
    // concurrently with each other, hence the lock (off the worker path).
    std::lock_guard<std::mutex> lk(foreign_mu_);
    foreign_.push_back(chunk_rec{begin, end, kForeignLane, s});
    return;
  }
  per_worker_[worker].push_back(chunk_rec{begin, end, worker, s});
}

std::vector<chunk_rec> loop_trace::sorted_by_seq() const {
  std::vector<chunk_rec> all;
  all.reserve(chunk_count());
  for (const auto& buf : per_worker_) {
    all.insert(all.end(), buf.begin(), buf.end());
  }
  all.insert(all.end(), foreign_.begin(), foreign_.end());
  std::sort(all.begin(), all.end(),
            [](const chunk_rec& a, const chunk_rec& b) { return a.seq < b.seq; });
  return all;
}

std::vector<std::uint32_t> loop_trace::iteration_owners(
    std::int64_t begin, std::int64_t end, std::int64_t stride) const {
  if (stride < 1) stride = 1;
  const std::int64_t span = end > begin ? end - begin : 0;
  const std::int64_t entries = (span + stride - 1) / stride;
  // Allocation cap: refuse (empty result) rather than materialize a
  // multi-GB vector from a diagnostics helper; see the header.
  if (entries > kMaxOwnerEntries) return {};
  std::vector<std::uint32_t> owners(static_cast<std::size_t>(entries),
                                    kNoOwner);
  const auto apply = [&](const std::vector<chunk_rec>& buf) {
    for (const auto& c : buf) {
      const std::int64_t lo = std::max(c.begin, begin);
      const std::int64_t hi = std::min(c.end, end);
      if (lo >= hi) continue;
      // First sampled index at or above lo, then every stride-th entry.
      std::int64_t k = (lo - begin + stride - 1) / stride;
      for (; begin + k * stride < hi; ++k) {
        owners[static_cast<std::size_t>(k)] = c.worker;
      }
    }
  };
  for (const auto& buf : per_worker_) apply(buf);
  apply(foreign_);
  return owners;
}

std::int64_t loop_trace::total_iterations() const {
  std::int64_t total = 0;
  for (const auto& buf : per_worker_) {
    for (const auto& c : buf) total += c.end - c.begin;
  }
  for (const auto& c : foreign_) total += c.end - c.begin;
  return total;
}

std::size_t loop_trace::chunk_count() const {
  std::size_t n = 0;
  for (const auto& buf : per_worker_) n += buf.size();
  return n + foreign_.size();
}

void loop_trace::clear() {
  for (auto& buf : per_worker_) buf.clear();
  foreign_.clear();
  seq_.store(0, std::memory_order_relaxed);
}

}  // namespace hls::trace

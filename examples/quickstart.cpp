// Quickstart: the hybrid parallel loop in five lines.
//
//   build/examples/quickstart [--workers=N] [--n=1000000]
//                             [--telemetry] [--trace-out=trace.json]
//                             [--metrics-out=metrics.jsonl] [--chaos=SPEC]
//                             [--park-backstop-us=200]
//                             [--progress-budget-us=US] [--watchdog=0|1]
//                             [--max-inflight-loops=K]
//
// Creates a work-stealing runtime, runs a parallel loop under the paper's
// hybrid scheduling scheme, and shows that switching the policy is a
// one-argument change. Every runtime knob — team size, park backstop,
// watchdog progress budget, admission gate, chaos spec — comes through
// runtime_options::from_cli, so the flags here are the same ones every
// driver accepts. --telemetry prints the scheduler counter report at
// exit; --trace-out writes a Chrome trace (open in Perfetto) of every
// chunk, claim, and steal. --chaos installs the fault injector (same spec
// format as HLS_CHAOS; see docs/robustness.md), e.g. --chaos=42 for the
// default fault mix under seed 42.
#include <cstdio>
#include <iostream>
#include <mutex>
#include <numeric>
#include <vector>

#include "sched/loop.h"
#include "telemetry/report.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  const hls::cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 1'000'000);
  // All runtime knobs from the command line (the calling thread acts as
  // worker 0; a --chaos spec is installed by the constructor).
  hls::rt::runtime rt(hls::rt::runtime_options::from_cli(cli));
  hls::telemetry::run_session tel(rt.tel(),
                                  hls::telemetry::run_options::from_cli(cli));

  std::vector<double> data(static_cast<std::size_t>(n));

  // The paper's hybrid scheme: static partitions + XOR claim heuristic +
  // work stealing inside partitions. The site handle names this loop in
  // --metrics-out profiles.
  hls::loop_options lopt;
  lopt.site = HLS_LOOP_SITE("fill");
  hls::for_each(
      rt, 0, n, hls::policy::hybrid,
      [&](std::int64_t i) { data[static_cast<std::size_t>(i)] = 1.0 / (1.0 + i); },
      lopt);

  const double sum = std::accumulate(data.begin(), data.end(), 0.0);
  std::printf("hybrid:      harmonic-ish sum = %.6f\n", sum);

  // Any other policy is a drop-in replacement; chunk bodies also work.
  for (hls::policy pol : hls::kAllParallelPolicies) {
    double check = 0.0;
    std::mutex mu;
    hls::parallel_for(rt, 0, n, pol, [&](std::int64_t lo, std::int64_t hi) {
      double local = 0.0;
      for (std::int64_t i = lo; i < hi; ++i) {
        local += data[static_cast<std::size_t>(i)];
      }
      std::lock_guard<std::mutex> lk(mu);
      check += local;
    });
    std::printf("%-12s chunked re-sum  = %.6f\n", hls::policy_name(pol),
                check);
  }
  return tel.finish(std::cout) ? 0 : 1;
}

#include "telemetry/sampler.h"

#include <algorithm>
#include <chrono>

namespace hls::telemetry {

sampler::sampler(registry& reg) : sampler(reg, options{}) {}

sampler::sampler(registry& reg, options opt) : reg_(reg), opt_(opt) {
  // Clamp pathological configs instead of dividing by zero or allocating
  // an empty ring.
  const_cast<options&>(opt_).hz = std::clamp(opt_.hz, 0.001, 100000.0);
  const_cast<options&>(opt_).ring_capacity =
      std::max<std::size_t>(1, opt_.ring_capacity);
}

sampler::~sampler() { stop(); }

void sampler::capture_locked() {
  metrics_sample s;
  s.ts_ns = reg_.now();
  s.totals = reg_.totals();
  s.claim_seq = reg_.claim_seq_histogram();
  s.steal_probe = reg_.steal_probe_histogram();
  s.chunk_ns = reg_.chunk_ns_histogram();
  s.wake_to_chunk_ns = reg_.wake_to_chunk_histogram();
  s.lemma4_violations = reg_.lemma4_violations();
  ++taken_;
  if (ring_.size() < opt_.ring_capacity) {
    ring_.push_back(std::move(s));
  } else {
    ring_[next_] = std::move(s);
    next_ = (next_ + 1) % opt_.ring_capacity;
  }
}

void sampler::start() {
  {
    hls::scoped_lock<annotated_mutex> lk(mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
    capture_locked();  // sample 0 anchors the series at start time
  }
  thread_ = std::thread([this] { run(); });
}

void sampler::stop() {
  {
    // scoped_lock, not std::unique_lock: the latter carries no scoped
    // capability attribute, so -Wthread-safety would not see mu_ held
    // for the guarded running_/stop_requested_ accesses below.
    hls::scoped_lock<annotated_mutex> lk(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  hls::scoped_lock<annotated_mutex> lk(mu_);
  capture_locked();  // final sample covers the stop point
  running_ = false;
}

bool sampler::running() const {
  hls::scoped_lock<annotated_mutex> lk(mu_);
  return running_;
}

std::uint64_t sampler::taken() const {
  hls::scoped_lock<annotated_mutex> lk(mu_);
  return taken_;
}

std::vector<metrics_sample> sampler::snapshot() const {
  hls::scoped_lock<annotated_mutex> lk(mu_);
  std::vector<metrics_sample> out;
  out.reserve(ring_.size());
  const std::size_t n = ring_.size();
  const std::size_t start = n < opt_.ring_capacity ? 0 : next_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % n]);
  }
  return out;
}

void sampler::run() {
  const auto period = std::chrono::nanoseconds(
      static_cast<std::int64_t>(1e9 / opt_.hz));
  std::unique_lock<annotated_mutex> lk(mu_);
  for (;;) {
    // wait_for returns true when stop was requested; spurious wakeups
    // re-wait for the remaining slice via the predicate loop inside.
    if (cv_.wait_for(lk, period, [this]() HLS_REQUIRES(mu_) {
          return stop_requested_;
        })) {
      return;  // stop() takes the closing sample after the join
    }
    capture_locked();
  }
}

}  // namespace hls::telemetry

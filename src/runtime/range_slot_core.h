// Splittable-range slot: lazy steal-driven loop splitting — the protocol
// core, as a header template.
//
// A worker executing a loop span publishes it here instead of eagerly
// heap-allocating ~lg(n/grain) divide-and-conquer subtasks. The stealable
// region [split, hi) lives in two 64-bit words — both offsets from an
// owner-written base — so full 64-bit spans stay on the zero-alloc path:
// `split` is raised only by the owner (reserve) and `hi` is lowered only
// by thieves (steal upper half). Nothing is allocated and no shared_ptr
// refcount is touched unless a steal actually happens; a stolen range
// seeds the thief's own slot, so splitting stays recursive and the
// divide-and-conquer span bound (Corollary 6) is preserved.
//
// Protocol (full ordering table in docs/runtime.md):
//
//   owner   open():    plain field writes, split.store(0, release), then
//                      hi.store(span, release) publishing the span
//           reserve(): announce split' = split + take (seq_cst store),
//                      then re-read hi waiting out any BUSY steal
//                      transaction; if the committed hi dropped below
//                      split', retreat split to it and keep only
//                      [split, hi). Amortized one announce per ~1/8 of
//                      the remaining range, not per chunk.
//           close():   CAS the clean hi -> kClosed (seq_cst), then spin
//                      until readers == 0 (drain)
//   thief   try_steal(): readers.fetch_add(seq_cst); load hi (seq_cst,
//                      fail if BUSY or closed); load split; CAS
//                      hi -> mid|BUSY (tentative claim of [mid, hi));
//                      re-read split (Dekker): commit with
//                      hi.store(mid) iff split <= mid, else abort with
//                      hi.store(old); readers.fetch_sub(release)
//
// Why the BUSY bit: with two words the owner's announce/re-read and the
// thief's claim/re-read can each observe the other mid-flight. The top
// bit of `hi` turns the steal into a two-phase transaction — the CAS is
// tentative, and the thief's post-CAS split re-read alone decides
// commit/abort. The owner never acts on a BUSY value (it waits it out),
// so every hi value the owner sees is a *committed* frontier: monotone
// decreasing, and any committed mid satisfies mid >= the split the thief
// re-read. Together with split never exceeding the owner's announced
// claim, that gives exactly-once: a committed steal [mid, hi) never
// overlaps the owner's kept region [.., split'], and an owner that loses
// the race retreats to exactly the committed frontier, leaving no hole.
//
// Lifetime safety mirrors the board's reader-count drain: a thief touches
// the plain fields (ctx/runner/base/grain) only between the reader
// announce and retreat while hi was observed open; close() waits out
// every such reader before the owner may rewrite the fields for the next
// span. ABA is structurally impossible: within one open, split only rises
// except for loss-retreats that never pass a committed hi, clean hi only
// falls, and a reopened slot cannot be reached by a stale CAS because the
// drain waited for every thief holding a pre-close hi value.
//
// Template parameters:
//   Traits — synchronization traits (verify/sync.h); the plain fields use
//            Traits::var so the model-checking harness race-checks every
//            access the drain protocol is supposed to order.
//   Runner — the type stored in the runner field; opaque to the protocol
//            (the shipping wrapper uses its worker-thunk function pointer,
//            the verification models use their own callables).
//   Policy — protocol-variant knobs; shipping code always uses
//            range_slot_policy_default (see verify_test.cpp for why the
//            broken variants exist).
#pragma once

#include <algorithm>
#include <atomic>  // std::memory_order (the traits' atomics share its enum)
#include <cassert>
#include <cstdint>

#include "util/cacheline.h"

namespace hls::rt {

// close_drain: close() unpublishes with a seq_cst CAS and waits out
// in-flight readers. Disabling it downgrades close() to a plain relaxed
// store with no drain — reintroducing the use-after-reopen race the drain
// exists to prevent; the verification suite proves the harness flags it
// (a vector-clock data race on the span fields).
//
// steal_recheck: the thief re-reads split after its tentative hi CAS and
// aborts when the owner's announce already covered [mid, ..). Disabling
// it commits unconditionally — reintroducing the owner/thief overlap the
// Dekker re-read exists to prevent (a double-executed iteration, caught
// by the range_word-broken-norecheck model).
struct range_slot_policy_default {
  static constexpr bool close_drain = true;
  static constexpr bool steal_recheck = true;
};

struct range_slot_policy_no_drain {
  static constexpr bool close_drain = false;
  static constexpr bool steal_recheck = true;
};

struct range_slot_policy_no_recheck {
  static constexpr bool close_drain = true;
  static constexpr bool steal_recheck = false;
};

template <typename Traits, typename Runner,
          typename Policy = range_slot_policy_default>
class range_slot_core {
  template <typename U>
  using atomic_t = typename Traits::template atomic<U>;
  template <typename U>
  using var_t = typename Traits::template var<U>;

 public:
  using runner_type = Runner;

  // Result of a successful steal; evaluates to false on a failed probe.
  struct stolen {
    Runner run{};
    void* ctx = nullptr;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    explicit operator bool() const noexcept { return run != Runner{}; }
  };

  // Largest publishable span: offsets must stay clear of the BUSY bit
  // (and distinguishable from kClosed). 2^62 iterations is beyond any
  // addressable problem size, so no caller path needs a bisection
  // fallback any more.
  static constexpr std::int64_t kMaxSpan = std::int64_t{1} << 62;

  range_slot_core() = default;
  range_slot_core(const range_slot_core&) = delete;
  range_slot_core& operator=(const range_slot_core&) = delete;

  // -- owner side (the worker that owns this slot) ----------------------

  // Publishes [lo, hi) as a splittable span. Returns false when the slot
  // is already open (a nested loop inside a chunk body) or the span is
  // empty/out of range — validated in release builds too, so a caller
  // bypassing parallel_for cannot corrupt the protocol words silently.
  bool open(void* ctx, Runner runner, std::int64_t lo, std::int64_t hi,
            std::int64_t grain) noexcept {
    if (owner_open_.load()) return false;
    if (hi <= lo) return false;
    // Unsigned subtraction is exact for any lo < hi, even when the signed
    // difference would overflow (lo < 0 <= hi near the int64 extremes).
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    if (span > static_cast<std::uint64_t>(kMaxSpan)) return false;
    ctx_.store(ctx);
    runner_.store(runner);
    base_.store(lo);
    grain_.store(grain < 1 ? 1 : grain);
    init_hi_off_.store(span);
    owner_open_.store(true);
    split_.store(0, std::memory_order_release);
    // The release store publishes the fields (and the split reset) above
    // to any thief whose (seq_cst) hi load observes the open value.
    hi_.store(span, std::memory_order_release);
    return true;
  }

  // Reserves the owner's next batch: claims [cur, result) where `cur` is
  // the owner's current position (== the published split). Returns `cur`
  // itself when thieves have consumed everything above it. The batch is
  // max(grain, remaining/8), so the owner pays one announce per refill,
  // not per chunk, while keeping 7/8 of the remainder stealable.
  std::int64_t reserve(std::int64_t cur) noexcept {
    const std::int64_t b = base_.load();
    const std::uint64_t off =
        static_cast<std::uint64_t>(cur) - static_cast<std::uint64_t>(b);
    // Only the owner raises split (and loss-retreats never pass the
    // owner's position), so the published split equals `off` on entry.
    assert(split_.load(std::memory_order_relaxed) == off);
    const std::uint64_t h = wait_clean_hi();
    if (off >= h) return cur;  // thieves consumed the rest
    const std::uint64_t remaining = h - off;
    const std::uint64_t g = static_cast<std::uint64_t>(grain_.load());
    const std::uint64_t take =
        remaining <= g ? remaining : std::max(g, remaining >> 3);
    const std::uint64_t target = off + take;
    // Announce the claim, then re-read the committed hi (the owner half
    // of the Dekker handshake with try_steal's CAS + split re-read).
    split_.store(target, std::memory_order_seq_cst);
    const std::uint64_t h2 = wait_clean_hi();
    if (h2 >= target) return b + static_cast<std::int64_t>(target);
    // A steal committed below target (its thief re-read split before the
    // announce landed): retreat to the committed frontier — [off, h2) is
    // exactly what remains ours, and no later steal can undercut it
    // because any thief that observes the announced split computes a mid
    // at or above it.
    const std::uint64_t kept = h2 > off ? h2 : off;
    split_.store(kept, std::memory_order_seq_cst);
    return b + static_cast<std::int64_t>(kept);
  }

  // Unpublishes the span and waits out in-flight thief probes so the
  // fields may be safely rewritten by the next open(). Returns true when
  // at least one steal shrank the span (i.e. the span was split).
  bool close() noexcept {
    std::uint64_t last;
    if constexpr (Policy::close_drain) {
      // CAS only a clean (committed) value to kClosed so an in-flight
      // steal transaction's commit/abort store cannot clobber the closed
      // sentinel. The seq_cst CAS is one side of a Dekker handshake with
      // try_steal(): a thief either announced itself before this store
      // (the drain below waits it out) or its hi load sees kClosed (which
      // reads as BUSY) and bails.
      last = hi_.load(std::memory_order_seq_cst);
      for (;;) {
        while ((last & kBusyBit) != 0) {
          Traits::pause();
          last = hi_.load(std::memory_order_seq_cst);
        }
        if (hi_.compare_exchange_weak(last, kClosed,
                                      std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
          break;
        }
      }
    } else {
      last = hi_.load(std::memory_order_relaxed);
      hi_.store(kClosed, std::memory_order_relaxed);
    }
    owner_open_.store(false);
    if constexpr (Policy::close_drain) {
      // Drain: after this loop no thief can still be reading the span
      // fields (its release fetch_sub happens-before our
      // acquire-or-stronger load), so the next open() may rewrite them
      // without a race. A stale pre-close hi value also cannot be CASed
      // over a reopened slot, because every thief holding one retreated
      // here first.
      while (readers_.load(std::memory_order_seq_cst) != 0) Traits::pause();
    }
    return last != init_hi_off_.load();
  }

  // Owner-thread-only: is this slot currently publishing a span?
  bool owner_open() const noexcept { return owner_open_.load(); }

  // Owner-side reclaim of a range the owner itself just carved off with
  // try_steal() (the push-handoff donor pre-split, docs/runtime.md): when
  // the targeted wake fails and the donor takes its deposit back, this
  // restores [lo, hi) — absolute bounds, exactly the `stolen` result — to
  // the open span by raising hi from the committed post-steal frontier
  // back to the pre-steal one. Succeeds only when hi still equals `lo`'s
  // offset *clean*: any in-flight steal transaction (BUSY), a further
  // committed steal, or a close makes the CAS miss and the caller must run
  // the range itself. Raising hi here is not the reopen-ABA the close
  // drain guards against: the slot is still inside the same open(), so a
  // thief acting on the restored value steals a region that genuinely is
  // stealable again. Precondition: called by the owner, before it has
  // reserved past `lo` (the donor reclaims immediately, before its
  // owner_loop starts).
  bool try_unsteal(std::int64_t lo, std::int64_t hi) noexcept {
    const std::int64_t b = base_.load();
    std::uint64_t lo_off =
        static_cast<std::uint64_t>(lo) - static_cast<std::uint64_t>(b);
    const std::uint64_t hi_off =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(b);
    return hi_.compare_exchange_strong(lo_off, hi_off,
                                       std::memory_order_seq_cst,
                                       std::memory_order_relaxed);
  }

  // -- thief side -------------------------------------------------------

  // Cheap pre-check (one relaxed load, no RMW) for the steal path's
  // common miss case.
  bool looks_open() const noexcept {
    return hi_.load(std::memory_order_relaxed) != kClosed;
  }

  // One steal attempt: claims the upper half of the stealable region when
  // it holds at least two grains (both halves stay >= grain). Like
  // ws_deque::steal, a lost CAS race — or a slot mid-transaction — reports
  // failure rather than retrying.
  stolen try_steal() noexcept {
    stolen out;
    // Announce before reading hi (the other side of close()'s Dekker
    // handshake); the plain field reads below are only legal between this
    // increment and the decrement while hi was observed open.
    readers_.fetch_add(1, std::memory_order_seq_cst);
    std::uint64_t h = hi_.load(std::memory_order_seq_cst);
    if ((h & kBusyBit) == 0) {  // clean, and kClosed reads as busy
      const std::uint64_t s = split_.load(std::memory_order_seq_cst);
      const auto g = static_cast<std::uint64_t>(grain_.load());
      // Steal only when both halves stay >= grain; smaller remainders are
      // the owner's tail and not worth a migration. (h <= s is possible
      // when the owner announced past a committed steal and has not yet
      // retreated.)
      if (h > s && h - s >= 2 * g) {
        const std::uint64_t mid = s + (h - s) / 2;
        // Tentative claim of [mid, h): BUSY makes the owner (reserve's
        // re-read, close) wait until this transaction resolves, so clean
        // hi values are exactly the committed steal frontier.
        if (hi_.compare_exchange_strong(h, mid | kBusyBit,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
          bool commit = true;
          if constexpr (Policy::steal_recheck) {
            // Dekker re-read: abort when the owner's announce already
            // claimed into [mid, h) — the owner saw a clean hi >= its
            // target and committed, so stealing would double-execute.
            commit = split_.load(std::memory_order_seq_cst) <= mid;
          }
          if (commit) {
            out.run = runner_.load();
            out.ctx = ctx_.load();
            const std::int64_t b = base_.load();
            out.lo = b + static_cast<std::int64_t>(mid);
            out.hi = b + static_cast<std::int64_t>(h);
            hi_.store(mid, std::memory_order_seq_cst);
          } else {
            hi_.store(h, std::memory_order_seq_cst);  // abort: hand it back
          }
        }
      }
    }
    readers_.fetch_sub(1, std::memory_order_release);
    return out;
  }

 private:
  // Top bit of hi_: set while a thief's steal transaction is in flight.
  // kClosed has it set too, so one branch rejects both in try_steal.
  static constexpr std::uint64_t kBusyBit = 1ull << 63;
  static constexpr std::uint64_t kClosed = ~0ull;

  // Owner/close-side spin: waits out an in-flight steal transaction and
  // returns the committed hi offset. Thieves never hold BUSY across a
  // blocking operation (CAS, one load, one store), so the wait is a few
  // instructions long; under the harness pause() blocks until the thief's
  // resolving store.
  std::uint64_t wait_clean_hi() noexcept {
    std::uint64_t h = hi_.load(std::memory_order_seq_cst);
    while ((h & kBusyBit) != 0) {
      Traits::pause();
      h = hi_.load(std::memory_order_seq_cst);
    }
    return h;
  }

  // Owner-written span fields. Thieves read them only inside the reader
  // announce/retreat window after observing hi open; the close() drain
  // orders those reads before any rewrite (see header comment). Routed
  // through Traits::var so the harness race-checks exactly the accesses
  // the drain protocol is supposed to order.
  var_t<void*> ctx_{};
  var_t<Runner> runner_{};
  var_t<std::int64_t> base_{};
  var_t<std::int64_t> grain_{1};
  var_t<std::uint64_t> init_hi_off_{};  // owner-only: split detect at close
  var_t<bool> owner_open_{};            // owner-only: nested-span guard

  // The owner's claim frontier (offset from base_): raised by reserve's
  // announce, lowered only by the owner's own loss-retreat.
  alignas(kCacheLine) atomic_t<std::uint64_t> split_{0};

  // Upper bound of the stealable region (offset from base_): lowered by
  // committed steals, BUSY-tagged during a steal transaction; kClosed
  // when no span is open.
  alignas(kCacheLine) atomic_t<std::uint64_t> hi_{kClosed};

  // In-flight thief probes (the board-style drain counter).
  alignas(kCacheLine) atomic_t<std::uint32_t> readers_{0};
};

}  // namespace hls::rt

// Cooperative cancellation for parallel loops.
//
// A cancel_source owns a shared flag; cancel_tokens are cheap copyable
// observers handed to loops via loop_options::cancel. Every policy checks
// the token at chunk granularity: once cancelled, chunks that have not yet
// started their body are skipped (their iterations still retire, so the
// loop terminates and joins normally) and parallel_for returns
// loop_status::cancelled. A chunk body that is already running is never
// interrupted — cancellation is cooperative, like std::stop_token.
//
//   hls::cancel_source src;
//   hls::loop_options opt;
//   opt.cancel = src.token();
//   // ... from any thread: src.request_cancel();
//   auto res = hls::parallel_for(rt, 0, n, pol, body, opt);
//   if (res.status == hls::loop_status::cancelled) ...
#pragma once

#include <atomic>
#include <memory>

namespace hls {

class cancel_source;

// Observer handle; default-constructed tokens are unlinked and never
// report cancellation. Copies share the source's flag.
class cancel_token {
 public:
  cancel_token() = default;

  bool linked() const noexcept { return state_ != nullptr; }
  bool cancelled() const noexcept {
    return state_ != nullptr && state_->load(std::memory_order_acquire);
  }

  // Internal: the flag polled by the scheduler (nullptr when unlinked).
  // The token (and thus the flag) must outlive the loop, which holds: the
  // posting worker blocks inside parallel_for while loop_options is alive.
  const std::atomic<bool>* flag() const noexcept { return state_.get(); }

 private:
  friend class cancel_source;
  explicit cancel_token(std::shared_ptr<const std::atomic<bool>> s) noexcept
      : state_(std::move(s)) {}

  std::shared_ptr<const std::atomic<bool>> state_;
};

class cancel_source {
 public:
  cancel_source() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  // Any thread; idempotent. Loops observing a token of this source skip
  // their remaining chunks.
  void request_cancel() noexcept {
    state_->store(true, std::memory_order_release);
  }

  bool cancel_requested() const noexcept {
    return state_->load(std::memory_order_acquire);
  }

  // Re-arms the source for reuse across loops. Only safe while no loop is
  // polling a token of this source.
  void reset() noexcept { state_->store(false, std::memory_order_release); }

  cancel_token token() const noexcept { return cancel_token(state_); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

}  // namespace hls

// NPB MG: V-cycle multigrid for the 3-D Poisson problem.
//
// Implements NPB's operator set on periodic grids: the 27-point A operator
// (coefficients by neighbor class), the psinv smoother S, full-weighting
// restriction rprj3, and trilinear prolongation interp, composed into the
// mg3P V-cycle. The right-hand side is +-1 at LCG-chosen points, as in
// NPB. All plane loops are parallel loops over the outermost dimension.
// Verification: the residual norm must contract at a healthy multigrid
// rate per V-cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/nas_common.h"

namespace hls::workloads::nas {

struct mg_params {
  int log2_size = 5;  // finest grid is (2^log2_size)^3; NPB class S is 5
  int cycles = 4;     // V-cycles (NPB class S: 4)
  int charge_points = 10;  // +1 and -1 charges each
  std::uint64_t seed = 314159265;
};

// One cubic periodic grid of doubles, n^3 elements.
class mg_grid {
 public:
  explicit mg_grid(int n) : n_(n), data_(static_cast<std::size_t>(n) * n * n) {}

  int n() const noexcept { return n_; }
  double& at(int i, int j, int k) noexcept {
    return data_[(static_cast<std::size_t>(i) * n_ + j) * n_ + k];
  }
  double at(int i, int j, int k) const noexcept {
    return data_[(static_cast<std::size_t>(i) * n_ + j) * n_ + k];
  }
  int wrap(int i) const noexcept {
    return i < 0 ? i + n_ : (i >= n_ ? i - n_ : i);
  }
  std::vector<double>& raw() noexcept { return data_; }
  const std::vector<double>& raw() const noexcept { return data_; }

 private:
  int n_;
  std::vector<double> data_;
};

class mg_bench {
 public:
  explicit mg_bench(const mg_params& p);

  // r = v - A u   (27-point operator), parallel over planes.
  void resid(rt::runtime& rt, const mg_grid& u, const mg_grid& v, mg_grid& r,
             policy pol, const loop_options& opt = {});

  // u += S r      (smoother), parallel over planes.
  void psinv(rt::runtime& rt, const mg_grid& r, mg_grid& u, policy pol,
             const loop_options& opt = {});

  // Coarse <- full weighting of fine, parallel over coarse planes.
  void rprj3(rt::runtime& rt, const mg_grid& fine, mg_grid& coarse,
             policy pol, const loop_options& opt = {});

  // Fine += trilinear prolongation of coarse, parallel over coarse planes.
  void interp(rt::runtime& rt, const mg_grid& coarse, mg_grid& fine,
              policy pol, const loop_options& opt = {});

  // One V-cycle on the level hierarchy: u <- u + M r.
  void vcycle(rt::runtime& rt, policy pol, const loop_options& opt = {});

  double residual_norm(rt::runtime& rt, policy pol,
                       const loop_options& opt = {});

  // Full benchmark: `cycles` V-cycles with residual tracking.
  kernel_result run(rt::runtime& rt, policy pol, const loop_options& opt = {});

  const mg_grid& solution() const noexcept { return u_; }

 private:
  mg_params p_;
  int levels_;
  mg_grid u_;   // solution, finest level
  mg_grid v_;   // right-hand side, finest level
  mg_grid r_;   // residual, finest level
  // Per-level scratch grids for the V-cycle (index 0 = finest).
  std::vector<mg_grid> ru_;  // correction per level
  std::vector<mg_grid> rr_;  // residual per level
};

// DES loop structure: the V-cycle's plane loops across levels, balanced,
// with per-plane footprints shrinking at coarser levels.
sim::workload_spec mg_spec(const mg_params& p);

}  // namespace hls::workloads::nas
